package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/fault"
	"smappic/internal/kernel"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// Result is one job's outcome — everything the aggregate needs, in a form
// that round-trips through JSON byte-exactly (the cache stores results as
// JSON, and a cache hit must be indistinguishable from a fresh run).
type Result struct {
	Label  string `json:"label"`
	Key    string `json:"key"`
	Params Params `json:"params"`

	// Cycles is the workload's own measurement: IS runtime, probe round
	// trip, or the store stream's duration. RunCycles is the full
	// simulated time including drain.
	Cycles    uint64  `json:"cycles"`
	RunCycles uint64  `json:"run_cycles"`
	Seconds   float64 `json:"seconds"` // Cycles at the prototype clock

	// Checksum is the IS output hash (hex); empty for other workloads.
	Checksum string `json:"checksum,omitempty"`
	Sorted   bool   `json:"sorted,omitempty"`

	// Attempts counts executions including stall retries (set by the
	// runner; a cached result keeps the count from the run that won it).
	Attempts int `json:"attempts"`

	// FPGAHours is the job's modeled FPGA time: prototype wall time times
	// the FPGA count — what the cloud bill is computed from.
	FPGAHours float64 `json:"fpga_hours"`

	// Stats is the run's counter snapshot (sim.Stats.CounterSnapshot);
	// campaign aggregation merges these. Metrics is the full MetricsJSON
	// document, cached so re-runs can serve it without re-simulating.
	Stats   map[string]uint64 `json:"stats"`
	Metrics json.RawMessage   `json:"metrics,omitempty"`
}

// StallError reports a job whose forward-progress watchdog fired: the
// simulation wedged (typically under injected faults) and was terminated
// with a diagnosis instead of draining silently.
type StallError struct{ Diagnosis string }

// Error summarizes the stall; the full diagnosis is preserved.
func (e *StallError) Error() string {
	first, _, _ := strings.Cut(e.Diagnosis, "\n")
	return "campaign: job stalled: " + first
}

// IsStall reports whether err is (or wraps) a watchdog stall — the one
// failure class the runner retries.
func IsStall(err error) bool {
	var s *StallError
	return errors.As(err, &s)
}

// stepBatch is how many events the executor runs between cancellation and
// timeout checks. Batching by event count (not RunUntil time slices) matters
// for determinism: RunUntil forces the clock forward to its deadline when
// the queue drains early, which would inflate the simulated time a kernel
// Join observes; Step never moves the clock past the last executed event.
const stepBatch = 4096

// aborted carries a cancellation/timeout/stall out of the event loop; it is
// recovered at the top of Execute.
type aborted struct{ err error }

// Execute runs one job to completion and returns its Result. It honors
// ctx cancellation and deadline between event slices, and returns a
// *StallError when the job's watchdog detects a wedged simulation.
// Execution is fully deterministic: equal Params produce byte-identical
// Results (Attempts excluded; the runner owns it).
func Execute(ctx context.Context, p Params) (res *Result, err error) {
	if verr := p.Validate(); verr != nil {
		return nil, verr
	}
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(aborted)
			if !ok {
				panic(r)
			}
			res, err = nil, a.err
		}
	}()

	a, b, c, _ := core.ParseShape(p.Shape)
	cfg := core.DefaultConfig(a, b, c)
	cfg.Core = core.CoreNone
	cfg.Seed = p.Seed
	cfg.GlobalInterleaveHoming = p.Homing == HomingInterleave
	if p.Credits > 0 {
		cfg.Bridge.CreditsPerDst = p.Credits
	}
	cfg.Bridge.ExtraLatency = sim.Time(p.ExtraLatency)
	cfg.WatchdogInterval = sim.Time(p.Watchdog)
	cfg.Faults, err = fault.Parse(p.Faults, p.FaultSeed)
	if err != nil {
		return nil, err
	}
	proto, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}

	drive := func() sim.Time { return driveEngine(ctx, proto, p.MaxCycles) }

	var cycles sim.Time
	checksum := ""
	sorted := false
	switch p.Workload {
	case WorkloadIS:
		kc := kernel.DefaultConfig()
		kc.NUMA = p.NUMA
		k := kernel.New(proto, kc)
		k.SetRunner(drive)
		threads := p.Threads
		if threads == 0 {
			threads = len(k.AllHarts())
		}
		ip := workload.DefaultISParams(threads)
		ip.Keys = p.Keys
		ip.Seed = p.Seed
		if p.ActiveNodes > 0 {
			ip.Affinity = k.NodesHarts(p.ActiveNodes)
		}
		r := workload.RunIS(k, ip)
		cycles = r.Cycles
		checksum = fmt.Sprintf("%016x", r.Checksum)
		sorted = r.Sorted

	case WorkloadProbe:
		// One warm dirty-line read from node 0 to node 1, exactly the
		// Fig. 7 measurement (seq 1 keeps the probe line off the warmup
		// line). MeasureLatency drains the engine itself; a watchdog, if
		// armed, guarantees termination under injected hangs.
		cycles = proto.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 0}, 1)

	case WorkloadStores:
		port := proto.PortAt(cache.GID{Node: 0, Tile: 0})
		remote := proto.Map.NodeDRAMBase(1) + 0x100000
		done := false
		sim.Go(proto.Eng, "wl", func(proc *sim.Process) {
			start := proc.Now()
			for i := uint64(0); i < uint64(p.Keys); i++ {
				port.Store(proc, remote+i*64, 8, i) // one miss per line
			}
			cycles = proc.Now() - start
			done = true
		})
		drive()
		if !done {
			if proto.StallDiagnosis != "" {
				return nil, &StallError{Diagnosis: proto.StallDiagnosis}
			}
			return nil, fmt.Errorf("campaign: %s wedged without a watchdog diagnosis", p.Label())
		}
	}
	if proto.StallDiagnosis != "" {
		return nil, &StallError{Diagnosis: proto.StallDiagnosis}
	}

	metrics, err := proto.MetricsJSON()
	if err != nil {
		return nil, err
	}
	return &Result{
		Label:     p.Label(),
		Key:       p.Key(),
		Params:    p,
		Cycles:    uint64(cycles),
		RunCycles: uint64(proto.Now()),
		Seconds:   proto.Seconds(cycles),
		Checksum:  checksum,
		Sorted:    sorted,
		Attempts:  1,
		FPGAHours: proto.Seconds(proto.Now()) * float64(cfg.FPGAs) / 3600,
		Stats:     proto.Stats.CounterSnapshot(),
		Metrics:   metrics,
	}, nil
}

// driveEngine advances the serial engine to quiescence in stepBatch-event
// chunks, checking ctx between chunks so a wall-clock timeout or a campaign
// cancellation terminates a job mid-simulation. A watchdog stall surfaces
// here too: the engine drains after the watchdog fires, and the recorded
// diagnosis is converted into a StallError.
func driveEngine(ctx context.Context, proto *core.Prototype, maxCycles uint64) sim.Time {
	eng := proto.Eng
	for {
		if err := ctx.Err(); err != nil {
			panic(aborted{fmt.Errorf("campaign: job aborted at cycle %d: %w", eng.Now(), err)})
		}
		next, ok := eng.NextEventTime()
		if !ok {
			if proto.StallDiagnosis != "" {
				panic(aborted{&StallError{Diagnosis: proto.StallDiagnosis}})
			}
			return eng.Now()
		}
		if maxCycles > 0 && uint64(next) > maxCycles {
			panic(aborted{fmt.Errorf("campaign: job exceeded max_cycles %d", maxCycles)})
		}
		for i := 0; i < stepBatch; i++ {
			if !eng.Step() {
				break
			}
		}
	}
}
