// Package kernel is the mini operating system used for execution-driven
// studies on SMAPPIC prototypes. It stands in for the full-stack Linux of
// the paper's case studies and implements exactly the two policy dimensions
// those experiments exercise:
//
//   - NUMA-aware memory management (lazy first-touch page allocation on the
//     toucher's node, as Linux does with CONFIG_NUMA, available on RISC-V
//     since v5.12) versus topology-blind allocation (pages handed out with
//     no regard for locality);
//   - thread scheduling with taskset-style affinity: NUMA mode keeps
//     threads where they started, non-NUMA mode migrates them between
//     allowed harts on a timeslice, as a topology-blind scheduler would.
//
// Threads are Go functions running as simulation processes; their memory
// accesses are translated through the kernel's page table and flow through
// the prototype's cache hierarchy and NoC/bridge fabric, so placement
// policy turns directly into latency and congestion.
package kernel

import (
	"fmt"

	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/sim"
)

// PageBytes is the allocation granule (Sv39's 4 KiB).
const PageBytes = 4096

// heapBase is the start of the kernel's virtual heap. It is far above any
// physical address so mixups are caught immediately.
const heapBase uint64 = 1 << 44

// Config selects the kernel policies.
type Config struct {
	// NUMA enables first-touch allocation and no-migration scheduling.
	NUMA bool
	// Quantum is the scheduling timeslice for migration decisions in
	// non-NUMA mode, in cycles.
	Quantum sim.Time
	// MigrateCost is the context-switch penalty charged per migration.
	MigrateCost sim.Time
	// Seed drives the topology-blind allocator and migration choices.
	Seed uint64
}

// DefaultConfig returns NUMA-aware defaults.
func DefaultConfig() Config {
	return Config{NUMA: true, Quantum: 50_000, MigrateCost: 2000, Seed: 42}
}

// Kernel is a booted mini-OS instance on a prototype.
type Kernel struct {
	pr  *core.Prototype
	cfg Config
	rng *sim.RNG

	nextLocal []uint64          // per-node physical bump pointer
	pageTable map[uint64]uint64 // vpage -> physical page address
	pageNode  map[uint64]int    // vpage -> owning node (for stats)
	nextVA    uint64
	threads   []*Thread
}

// New boots the kernel on a prototype.
func New(pr *core.Prototype, cfg Config) *Kernel {
	k := &Kernel{
		pr:        pr,
		cfg:       cfg,
		rng:       sim.NewRNG(cfg.Seed),
		nextLocal: make([]uint64, pr.Cfg.TotalNodes()),
		pageTable: make(map[uint64]uint64),
		pageNode:  make(map[uint64]int),
		nextVA:    heapBase,
	}
	// Reserve the low 32 MiB of each node for code and kernel structures.
	for i := range k.nextLocal {
		k.nextLocal[i] = 32 << 20
	}
	return k
}

// Prototype returns the underlying hardware.
func (k *Kernel) Prototype() *core.Prototype { return k.pr }

// NUMA reports whether NUMA mode is enabled.
func (k *Kernel) NUMA() bool { return k.cfg.NUMA }

// Alloc reserves size bytes of virtual address space (page aligned).
// Physical pages are assigned lazily on first touch.
func (k *Kernel) Alloc(size uint64) uint64 {
	va := k.nextVA
	pages := (size + PageBytes - 1) / PageBytes
	k.nextVA += pages * PageBytes
	return va
}

// allocPhys grabs a fresh physical page on the given node.
func (k *Kernel) allocPhys(node int) uint64 {
	off := k.nextLocal[node]
	k.nextLocal[node] += PageBytes
	if off+PageBytes > k.pr.Map.MainMemorySize() {
		panic(fmt.Sprintf("kernel: node %d out of memory", node))
	}
	return k.pr.Map.NodeDRAMBase(node) + off
}

// translate maps a virtual address, allocating on first touch. toucher is
// the node of the accessing thread.
func (k *Kernel) translate(va uint64, toucher int) uint64 {
	if va < heapBase {
		// Identity-mapped low range (device or explicitly physical).
		return va
	}
	vp := va / PageBytes
	pa, ok := k.pageTable[vp]
	if !ok {
		node := toucher
		if !k.cfg.NUMA {
			// Topology-blind: the buddy allocator hands out pages from
			// wherever, modeled as a pseudo-random node.
			node = k.rng.Intn(k.pr.Cfg.TotalNodes())
		}
		pa = k.allocPhys(node)
		k.pageTable[vp] = pa
		k.pageNode[vp] = node
	}
	return pa + va%PageBytes
}

// Read performs a functional (zero-time) read at a virtual address, for
// verification and host-side inspection.
func (k *Kernel) Read(va uint64, size int) uint64 {
	return k.pr.ReadPhys(k.translate(va, 0), size)
}

// Write performs a functional (zero-time) write at a virtual address.
func (k *Kernel) Write(va uint64, size int, v uint64) {
	k.pr.WritePhys(k.translate(va, 0), size, v)
}

// Translate exposes the page table for hardware engines (e.g. MAPLE) that
// are programmed with already-touched buffers. The toucher for any page
// faulted here is node 0.
func (k *Kernel) Translate(va uint64) uint64 { return k.translate(va, 0) }

// PageNode reports which node holds a virtual page (testing/stats); -1 if
// untouched.
func (k *Kernel) PageNode(va uint64) int {
	if n, ok := k.pageNode[va/PageBytes]; ok {
		return n
	}
	return -1
}

// LocalFraction returns the fraction of touched pages that live on their
// most frequent toucher's... — simplified: fraction of pages on each node.
func (k *Kernel) PagesPerNode() []int {
	out := make([]int, k.pr.Cfg.TotalNodes())
	for _, n := range k.pageNode {
		out[n]++
	}
	return out
}

// Thread is a schedulable software thread.
type Thread struct {
	ID       int
	kern     *Kernel
	affinity []int // allowed harts
	hart     int
	port     *core.Port
	proc     *sim.Process
	nextMigr sim.Time

	Migrations int
	Done       bool
}

// Ctx is passed to thread bodies: the thread plus its simulation process.
type Ctx struct {
	T *Thread
	P *sim.Process
}

// Spawn starts fn as a thread allowed on the given harts (a taskset mask),
// beginning on the hart at index (threadID mod len(affinity)) so sibling
// threads spread over the mask.
func (k *Kernel) Spawn(name string, affinity []int, fn func(*Ctx)) *Thread {
	if len(affinity) == 0 {
		panic("kernel: empty affinity")
	}
	t := &Thread{
		ID:       len(k.threads),
		kern:     k,
		affinity: append([]int(nil), affinity...),
	}
	t.hart = t.affinity[t.ID%len(t.affinity)]
	t.port = k.pr.PortAt(k.locOf(t.hart))
	k.threads = append(k.threads, t)
	t.proc = sim.Go(k.pr.Eng, name, func(p *sim.Process) {
		t.nextMigr = p.Now() + k.cfg.Quantum
		fn(&Ctx{T: t, P: p})
		t.Done = true
	})
	return t
}

// Threads returns all spawned threads.
func (k *Kernel) Threads() []*Thread { return k.threads }

// AllHarts returns 0..n-1, the affinity of an unpinned thread.
func (k *Kernel) AllHarts() []int {
	out := make([]int, k.pr.Cfg.TotalTiles())
	for i := range out {
		out[i] = i
	}
	return out
}

// NodeHarts returns the harts of one node.
func (k *Kernel) NodeHarts(node int) []int {
	c := k.pr.Cfg.TilesPerNode
	out := make([]int, c)
	for i := range out {
		out[i] = node*c + i
	}
	return out
}

// NodesHarts returns the harts of nodes [0, n).
func (k *Kernel) NodesHarts(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, k.NodeHarts(i)...)
	}
	return out
}

func (k *Kernel) locOf(hart int) cache.GID {
	c := k.pr.Cfg.TilesPerNode
	return cache.GID{Node: hart / c, Tile: hart % c}
}

// node returns the thread's current NUMA node.
func (t *Thread) node() int { return t.hart / t.kern.pr.Cfg.TilesPerNode }

// Hart returns the hart the thread currently runs on.
func (t *Thread) Hart() int { return t.hart }

// maybeMigrate implements the non-NUMA scheduler: at each expired quantum
// the thread may hop to another allowed hart.
func (t *Thread) maybeMigrate(p *sim.Process) {
	if t.kern.cfg.NUMA || len(t.affinity) == 1 || p.Now() < t.nextMigr {
		return
	}
	t.nextMigr = p.Now() + t.kern.cfg.Quantum
	next := t.affinity[t.kern.rng.Intn(len(t.affinity))]
	if next == t.hart {
		return
	}
	t.hart = next
	t.port = t.kern.pr.PortAt(t.kern.locOf(next))
	t.Migrations++
	p.Wait(t.kern.cfg.MigrateCost)
}

// Load reads size bytes at virtual address va.
func (c *Ctx) Load(va uint64, size int) uint64 {
	c.T.maybeMigrate(c.P)
	pa := c.T.kern.translate(va, c.T.node())
	return c.T.port.Load(c.P, pa, size)
}

// Store writes size bytes at virtual address va.
func (c *Ctx) Store(va uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	pa := c.T.kern.translate(va, c.T.node())
	c.T.port.Store(c.P, pa, size, v)
}

// StoreAsync issues a fire-and-forget store (decoupled update): the write
// lands when permission arrives; the thread only pays the issue cycle.
func (c *Ctx) StoreAsync(va uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	pa := c.T.kern.translate(va, c.T.node())
	c.T.port.StoreAsync(pa, size, v)
	c.P.Wait(1)
}

// Amo atomically applies f at virtual address va.
func (c *Ctx) Amo(va uint64, size int, f func(uint64) uint64) uint64 {
	c.T.maybeMigrate(c.P)
	pa := c.T.kern.translate(va, c.T.node())
	return c.T.port.Amo(c.P, pa, size, f)
}

// Compute charges n cycles of computation.
func (c *Ctx) Compute(n sim.Time) {
	c.T.maybeMigrate(c.P)
	if n > 0 {
		c.P.Wait(n)
	}
}

// MMIOLoad performs an uncacheable device read from the current hart.
func (c *Ctx) MMIOLoad(addr uint64, size int) uint64 {
	c.T.maybeMigrate(c.P)
	return c.T.port.MMIOLoad(c.P, addr, size)
}

// MMIOStore performs an uncacheable device write from the current hart.
func (c *Ctx) MMIOStore(addr uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	c.T.port.MMIOStore(c.P, addr, size, v)
}

// Barrier synchronizes n threads. Arrivals perform a real atomic increment
// on a shared line (generating coherence traffic); waiting itself parks the
// process instead of spinning, charging a wake latency on release.
type Barrier struct {
	k       *Kernel
	n       int
	addr    uint64
	waiting []func()
	count   int
}

// NewBarrier creates a barrier for n threads.
func (k *Kernel) NewBarrier(n int) *Barrier {
	return &Barrier{k: k, n: n, addr: k.Alloc(PageBytes)}
}

// Wait blocks until n threads have arrived.
func (b *Barrier) Wait(c *Ctx) {
	c.Amo(b.addr, 8, func(o uint64) uint64 { return o + 1 })
	b.count++
	if b.count < b.n {
		wake := c.P.Suspend()
		b.waiting = append(b.waiting, wake)
		c.P.Park()
		return
	}
	// Release: reset the counter and wake everyone.
	b.count = 0
	c.Store(b.addr, 8, 0)
	ws := b.waiting
	b.waiting = nil
	for _, w := range ws {
		w()
	}
}

// Join runs the simulation until every spawned thread finished.
func (k *Kernel) Join() sim.Time {
	for {
		k.pr.Run()
		all := true
		for _, t := range k.threads {
			if !t.Done {
				all = false
				break
			}
		}
		if all {
			return k.pr.Eng.Now()
		}
		// Threads still parked with no pending events would be a deadlock.
		panic("kernel: Join: threads blocked with empty event queue")
	}
}
