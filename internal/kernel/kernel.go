// Package kernel is the mini operating system used for execution-driven
// studies on SMAPPIC prototypes. It stands in for the full-stack Linux of
// the paper's case studies and implements exactly the two policy dimensions
// those experiments exercise:
//
//   - NUMA-aware memory management (lazy first-touch page allocation on the
//     toucher's node, as Linux does with CONFIG_NUMA, available on RISC-V
//     since v5.12) versus topology-blind allocation (pages handed out with
//     no regard for locality);
//   - thread scheduling with taskset-style affinity: NUMA mode keeps
//     threads where they started, non-NUMA mode migrates them between
//     allowed harts on a timeslice, as a topology-blind scheduler would.
//
// Threads are Go functions running as simulation processes; their memory
// accesses are translated through the kernel's page table and flow through
// the prototype's cache hierarchy and NoC/bridge fabric, so placement
// policy turns directly into latency and congestion.
//
// The kernel is shard-safe: on a sharded prototype (core.Config.Parallel)
// threads on different FPGAs run on concurrent goroutines, so every piece
// of cross-thread kernel state is reached only through simulated memory
// operations whose ordering the conservative synchronizer already makes
// deterministic. Concretely:
//
//   - each thread has a private TLB; a miss always performs a real atomic
//     on the page's allocator lock line (striped over node 0) before
//     looking at the shared page table, so competing first-touchers of a
//     page are serialized in simulated time (cross-shard, the line
//     transfer costs at least one PCIe crossing = one lookahead window,
//     which also gives the host-side map accesses a happens-before edge);
//   - physical frames are direct-mapped (frame index = heap page index on
//     whichever node the policy picks), so the physical address of a page
//     never depends on the global order of unrelated faults;
//   - topology-blind placement hashes (seed, page) instead of drawing from
//     a shared RNG stream, and each thread's migration decisions come from
//     its own RNG, so no policy choice depends on global event order;
//   - barrier arrival is a fetch-add on a shared line; the same atomic
//     that generates the coherence traffic also serializes the arrivals,
//     so the release (futex-style wakeups sent through the cross-shard
//     network, one lookahead-bounded latency each) is deterministic;
//   - a migration that crosses nodes hops the thread's process between
//     engines through the cross-shard network, paying MigrateCost, which
//     must be at least the governing lookahead (PCIe across FPGAs, the
//     intra-FPGA interconnect between co-located nodes).
package kernel

import (
	"fmt"
	"sync"

	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/sim"
)

// PageBytes is the allocation granule (Sv39's 4 KiB).
const PageBytes = 4096

// heapBase is the start of the kernel's virtual heap. It is far above any
// physical address so mixups are caught immediately.
const heapBase uint64 = 1 << 44

// heapPhysOffset is where heap frames start within a node's DRAM (the low
// 32 MiB is reserved for code and kernel structures).
const heapPhysOffset uint64 = 32 << 20

// lockOffset places the allocator lock lines inside node 0's reserved low
// memory (below the 32 MiB kernel area, away from the probe scratch region
// at 16 MiB); lockLines stripes independent pages over distinct lines so
// only faults on the same page serialize against each other.
const (
	lockOffset uint64 = 8 << 20
	lockLines  uint64 = 64
)

// barrierWakeFloor is the minimum release-to-resume latency of a barrier
// wakeup (the futex/IPI path); the actual latency also covers the
// cross-shard lookahead.
const barrierWakeFloor sim.Time = 100

// Config selects the kernel policies.
type Config struct {
	// NUMA enables first-touch allocation and no-migration scheduling.
	NUMA bool
	// Quantum is the scheduling timeslice for migration decisions in
	// non-NUMA mode, in cycles.
	Quantum sim.Time
	// MigrateCost is the context-switch penalty charged per migration. On
	// a multi-FPGA prototype it must be at least the PCIe lookahead so a
	// cross-FPGA hop is representable under the conservative synchronizer;
	// on any multi-node prototype it must be at least the intra-FPGA
	// interconnect lookahead for the same reason (a hop between co-located
	// nodes crosses shards under per-node granularity).
	MigrateCost sim.Time
	// Seed drives the topology-blind allocator and migration choices.
	Seed uint64
}

// DefaultConfig returns NUMA-aware defaults.
func DefaultConfig() Config {
	return Config{NUMA: true, Quantum: 50_000, MigrateCost: 2000, Seed: 42}
}

// Kernel is a booted mini-OS instance on a prototype.
type Kernel struct {
	pr  *core.Prototype
	cfg Config

	// mu guards the shared allocator state below. Timed accesses reach it
	// only after the page's lock-line atomic, which keeps cross-shard
	// contenders on the same page at least one synchronization window
	// apart; the mutex makes the host-side (functional) accesses safe as
	// well.
	mu        sync.Mutex
	pageTable map[uint64]uint64 // vpage -> physical page address
	pageNode  map[uint64]int    // vpage -> owning node (for stats)
	nextVA    uint64
	threads   []*Thread

	// runner, when non-nil, replaces Prototype.Run in Join (see SetRunner).
	runner func() sim.Time
}

// New boots the kernel on a prototype.
func New(pr *core.Prototype, cfg Config) *Kernel {
	if !cfg.NUMA && pr.Cfg.FPGAs > 1 && cfg.MigrateCost < pr.Lookahead() {
		panic(fmt.Sprintf("kernel: MigrateCost %d below the PCIe lookahead %d; a cross-FPGA migration cannot be scheduled",
			cfg.MigrateCost, pr.Lookahead()))
	}
	if !cfg.NUMA && pr.Cfg.TotalNodes() > 1 && cfg.MigrateCost < pr.InnerLookahead() {
		panic(fmt.Sprintf("kernel: MigrateCost %d below the intra-FPGA lookahead %d; a cross-node migration cannot be scheduled",
			cfg.MigrateCost, pr.InnerLookahead()))
	}
	return &Kernel{
		pr:        pr,
		cfg:       cfg,
		pageTable: make(map[uint64]uint64),
		pageNode:  make(map[uint64]int),
		nextVA:    heapBase,
	}
}

// Prototype returns the underlying hardware.
func (k *Kernel) Prototype() *core.Prototype { return k.pr }

// NUMA reports whether NUMA mode is enabled.
func (k *Kernel) NUMA() bool { return k.cfg.NUMA }

// lockAddr is the physical address of a virtual page's allocator lock line
// (on node 0, striped so unrelated pages do not contend).
func (k *Kernel) lockAddr(vp uint64) uint64 {
	stripe := (vp - heapBase/PageBytes) % lockLines
	return k.pr.Map.NodeDRAMBase(0) + lockOffset + stripe*cache.LineBytes
}

// mix is the splitmix64 finalizer over a seeded input, used for all
// order-independent pseudo-random policy decisions.
func mix(seed, x uint64) uint64 {
	z := seed ^ x*0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// blindNode is the topology-blind allocator's placement for a virtual page:
// a pure hash of (seed, page), so the choice does not depend on which
// thread faults first.
func (k *Kernel) blindNode(vp uint64) int {
	return int(mix(k.cfg.Seed, vp) % uint64(k.pr.Cfg.TotalNodes()))
}

// Alloc reserves size bytes of virtual address space (page aligned).
// Physical pages are assigned lazily on first touch.
func (k *Kernel) Alloc(size uint64) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	va := k.nextVA
	pages := (size + PageBytes - 1) / PageBytes
	k.nextVA += pages * PageBytes
	return va
}

// physFor direct-maps a virtual heap page onto a node: frame index equals
// the heap page index, at an offset above the reserved kernel area. The
// physical address of a page therefore depends only on (vp, node), never
// on the order unrelated faults resolved in — the property that lets
// independent pages fault concurrently on different shards. Frames are
// sparse (the backing store materializes only touched pages), so the cost
// is address space, not memory.
func (k *Kernel) physFor(vp uint64, node int) uint64 {
	off := heapPhysOffset + (vp-heapBase/PageBytes)*PageBytes
	if off+PageBytes > k.pr.Map.MainMemorySize() {
		panic(fmt.Sprintf("kernel: virtual heap page %#x exceeds per-node main memory (direct-mapped paging)", vp))
	}
	return k.pr.Map.NodeDRAMBase(node) + off
}

// faultLocked resolves a page fault: look up the page, install it on first
// touch. toucher is the node charged for a NUMA first-touch allocation.
// Callers hold k.mu.
func (k *Kernel) faultLocked(vp uint64, toucher int) uint64 {
	pa, ok := k.pageTable[vp]
	if !ok {
		node := toucher
		if !k.cfg.NUMA {
			node = k.blindNode(vp)
		}
		pa = k.physFor(vp, node)
		k.pageTable[vp] = pa
		k.pageNode[vp] = node
	}
	return pa
}

// hostTranslate maps a virtual address functionally (no simulated time,
// host context). First touches from the host are charged to node 0 in NUMA
// mode.
func (k *Kernel) hostTranslate(va uint64) uint64 {
	if va < heapBase {
		// Identity-mapped low range (device or explicitly physical).
		return va
	}
	vp := va / PageBytes
	k.mu.Lock()
	pa := k.faultLocked(vp, 0)
	k.mu.Unlock()
	return pa + va%PageBytes
}

// Read performs a functional (zero-time) read at a virtual address, for
// verification and host-side inspection.
func (k *Kernel) Read(va uint64, size int) uint64 {
	return k.pr.ReadPhys(k.hostTranslate(va), size)
}

// Write performs a functional (zero-time) write at a virtual address.
func (k *Kernel) Write(va uint64, size int, v uint64) {
	k.pr.WritePhys(k.hostTranslate(va), size, v)
}

// Translate exposes the page table for hardware engines (e.g. MAPLE) that
// are programmed with already-touched buffers. The toucher for any page
// faulted here is node 0.
func (k *Kernel) Translate(va uint64) uint64 { return k.hostTranslate(va) }

// PageNode reports which node holds a virtual page (testing/stats); -1 if
// untouched.
func (k *Kernel) PageNode(va uint64) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n, ok := k.pageNode[va/PageBytes]; ok {
		return n
	}
	return -1
}

// PagesPerNode reports how many touched pages live on each node.
func (k *Kernel) PagesPerNode() []int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]int, k.pr.Cfg.TotalNodes())
	for _, n := range k.pageNode {
		out[n]++
	}
	return out
}

// Thread is a schedulable software thread.
type Thread struct {
	ID       int
	kern     *Kernel
	affinity []int // allowed harts
	hart     int
	port     *core.Port
	proc     *sim.Process
	nextMigr sim.Time
	rng      *sim.RNG // private stream: migration choices
	tlb      map[uint64]uint64
	barEpoch map[*Barrier]uint64

	Migrations int
	Done       bool
}

// Ctx is passed to thread bodies: the thread plus its simulation process.
type Ctx struct {
	T *Thread
	P *sim.Process
}

// Spawn starts fn as a thread allowed on the given harts (a taskset mask),
// beginning on the hart at index (threadID mod len(affinity)) so sibling
// threads spread over the mask. The thread's process runs on the engine of
// the shard its starting hart belongs to.
func (k *Kernel) Spawn(name string, affinity []int, fn func(*Ctx)) *Thread {
	if len(affinity) == 0 {
		panic("kernel: empty affinity")
	}
	t := &Thread{
		ID:       len(k.threads),
		kern:     k,
		affinity: append([]int(nil), affinity...),
		tlb:      make(map[uint64]uint64),
		barEpoch: make(map[*Barrier]uint64),
	}
	t.hart = t.affinity[t.ID%len(t.affinity)]
	t.rng = sim.NewRNG(mix(k.cfg.Seed, 0x7468_7264+uint64(t.ID)))
	t.port = k.pr.PortAt(k.locOf(t.hart))
	k.threads = append(k.threads, t)
	t.proc = sim.Go(k.pr.EngineForNode(t.node()), name, func(p *sim.Process) {
		t.nextMigr = p.Now() + k.cfg.Quantum
		fn(&Ctx{T: t, P: p})
		t.Done = true
	})
	return t
}

// Threads returns all spawned threads.
func (k *Kernel) Threads() []*Thread { return k.threads }

// AllHarts returns 0..n-1, the affinity of an unpinned thread.
func (k *Kernel) AllHarts() []int {
	out := make([]int, k.pr.Cfg.TotalTiles())
	for i := range out {
		out[i] = i
	}
	return out
}

// NodeHarts returns the harts of one node.
func (k *Kernel) NodeHarts(node int) []int {
	c := k.pr.Cfg.TilesPerNode
	out := make([]int, c)
	for i := range out {
		out[i] = node*c + i
	}
	return out
}

// NodesHarts returns the harts of nodes [0, n).
func (k *Kernel) NodesHarts(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, k.NodeHarts(i)...)
	}
	return out
}

func (k *Kernel) locOf(hart int) cache.GID {
	c := k.pr.Cfg.TilesPerNode
	return cache.GID{Node: hart / c, Tile: hart % c}
}

// node returns the thread's current NUMA node.
func (t *Thread) node() int { return t.hart / t.kern.pr.Cfg.TilesPerNode }

// Hart returns the hart the thread currently runs on.
func (t *Thread) Hart() int { return t.hart }

// maybeMigrate implements the non-NUMA scheduler: at each expired quantum
// the thread may hop to another allowed hart. A hop that changes nodes
// moves the thread's process through the cross-shard network to the
// destination node's engine — the same route in every mode and at every
// granularity, so results are mode-invariant (MigrateCost covers the
// governing lookahead, PCIe or intra-FPGA, checked at boot); a same-node
// hop just charges the context-switch cost.
func (t *Thread) maybeMigrate(p *sim.Process) {
	if t.kern.cfg.NUMA || len(t.affinity) == 1 || p.Now() < t.nextMigr {
		return
	}
	t.nextMigr = p.Now() + t.kern.cfg.Quantum
	next := t.affinity[t.rng.Intn(len(t.affinity))]
	if next == t.hart {
		return
	}
	pr := t.kern.pr
	oldNode := t.node()
	t.hart = next
	t.port = pr.PortAt(t.kern.locOf(next))
	t.Migrations++
	newNode := t.node()
	if newNode == oldNode {
		p.Wait(t.kern.cfg.MigrateCost)
		return
	}
	p.Hop(pr.Net(), oldNode, newNode, pr.EngineForNode(newNode), t.kern.cfg.MigrateCost)
}

// translate maps a virtual address with timing: a TLB hit is free, a miss
// performs a real fetch-add on the page's allocator lock line before
// touching the shared page table. The atomic both charges a realistic
// page-walk/fault cost and — because competing faulters of the same page
// serialize on its lock line through the coherence protocol — makes the
// first toucher (and with it placement) deterministic even when faulting
// threads run on different shards. Unrelated pages sit on different
// stripes and fault concurrently; their installs commute because the
// physical frame is a pure function of (page, node).
func (c *Ctx) translate(va uint64) uint64 {
	if va < heapBase {
		// Identity-mapped low range (device or explicitly physical).
		return va
	}
	t := c.T
	vp := va / PageBytes
	if pa, ok := t.tlb[vp]; ok {
		return pa + va%PageBytes
	}
	k := t.kern
	t.port.Amo(c.P, k.lockAddr(vp), 8, func(v uint64) uint64 { return v + 1 })
	k.mu.Lock()
	pa := k.faultLocked(vp, t.node())
	k.mu.Unlock()
	t.tlb[vp] = pa
	return pa + va%PageBytes
}

// Load reads size bytes at virtual address va.
func (c *Ctx) Load(va uint64, size int) uint64 {
	c.T.maybeMigrate(c.P)
	pa := c.translate(va)
	return c.T.port.Load(c.P, pa, size)
}

// Store writes size bytes at virtual address va.
func (c *Ctx) Store(va uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	pa := c.translate(va)
	c.T.port.Store(c.P, pa, size, v)
}

// StoreAsync issues a fire-and-forget store (decoupled update): the write
// lands when permission arrives; the thread only pays the issue cycle.
func (c *Ctx) StoreAsync(va uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	pa := c.translate(va)
	c.T.port.StoreAsync(pa, size, v)
	c.P.Wait(1)
}

// Amo atomically applies f at virtual address va.
func (c *Ctx) Amo(va uint64, size int, f func(uint64) uint64) uint64 {
	c.T.maybeMigrate(c.P)
	pa := c.translate(va)
	return c.T.port.Amo(c.P, pa, size, f)
}

// Compute charges n cycles of computation.
func (c *Ctx) Compute(n sim.Time) {
	c.T.maybeMigrate(c.P)
	if n > 0 {
		c.P.Wait(n)
	}
}

// MMIOLoad performs an uncacheable device read from the current hart.
func (c *Ctx) MMIOLoad(addr uint64, size int) uint64 {
	c.T.maybeMigrate(c.P)
	return c.T.port.MMIOLoad(c.P, addr, size)
}

// MMIOStore performs an uncacheable device write from the current hart.
func (c *Ctx) MMIOStore(addr uint64, size int, v uint64) {
	c.T.maybeMigrate(c.P)
	c.T.port.MMIOStore(c.P, addr, size, v)
}

// Barrier synchronizes n threads. Arrival is a real fetch-add on a shared
// count line, generating the coherence traffic of a pthread barrier's fast
// path. The slow path is futex-style with the wait queue owned by a home
// node, the way a real futex's wait queue lives in the kernel of one node:
// waiters register with the home and the last arriver posts a release
// there, both as cross-shard messages, so every queue mutation executes on
// the home node's engine in the network's canonical delivery order. That
// makes the queue deterministic and shard-safe by construction — whatever
// the granularity, no other shard ever touches it from its own execution
// context. A register that reaches the home after its round's release
// (possible when fault-injected link delays reorder arrivals) is woken
// immediately via the released-round watermark.
type Barrier struct {
	k         *Kernel
	n         int
	countAddr uint64

	// Home-node-owned state: touched only inside CrossNet deliveries on
	// node homeNode's engine, never from a waiter's own execution context.
	homeNode int
	waiting  []barWaiter
	released uint64 // highest round already released
}

// barWaiter is a parked thread awaiting release: its round, the node it
// parked on and the callback that resumes it there.
type barWaiter struct {
	ep   uint64
	node int
	wake func()
}

// NewBarrier creates a barrier for n threads. The wait queue lives on
// node 0, alongside the kernel's other bookkeeping.
func (k *Kernel) NewBarrier(n int) *Barrier {
	return &Barrier{k: k, n: n, countAddr: k.Alloc(PageBytes), homeNode: 0}
}

// hopLatency is the cost of one barrier slow-path message (register,
// release or wake); it must cover the PCIe lookahead so the messages are
// schedulable from any shard (and with it the smaller intra-FPGA
// lookahead too).
func (b *Barrier) hopLatency() sim.Time {
	if l := b.k.pr.Lookahead(); l > barrierWakeFloor {
		return l
	}
	return barrierWakeFloor
}

// release runs on the home node: it marks the round released and wakes
// every registered waiter of that round.
func (b *Barrier) release(ep uint64) {
	if ep > b.released {
		b.released = ep
	}
	home := b.k.pr.EngineForNode(b.homeNode)
	at := home.Now() + b.hopLatency()
	var keep []barWaiter
	for _, w := range b.waiting {
		if w.ep <= b.released {
			b.k.pr.Net().Send(b.homeNode, w.node, at, w.wake)
		} else {
			keep = append(keep, w)
		}
	}
	b.waiting = keep
}

// register runs on the home node: it queues the waiter, or wakes it on the
// spot when its round was already released.
func (b *Barrier) register(w barWaiter) {
	if w.ep <= b.released {
		home := b.k.pr.EngineForNode(b.homeNode)
		b.k.pr.Net().Send(b.homeNode, w.node, home.Now()+b.hopLatency(), w.wake)
		return
	}
	b.waiting = append(b.waiting, w)
}

// Wait blocks until n threads have arrived. The arrival count is monotonic
// (never reset), so the i-th overall arrival belongs to round i/n; each
// thread tracks its own round in its epoch map.
func (b *Barrier) Wait(c *Ctx) {
	ep := c.T.barEpoch[b] + 1
	c.T.barEpoch[b] = ep
	old := c.Amo(b.countAddr, 8, func(o uint64) uint64 { return o + 1 })
	pr := b.k.pr
	src := c.T.node()
	if old+1 == uint64(b.n)*ep {
		// Last arriver of this round: post the release to the home node
		// and continue without blocking.
		pr.Net().Send(src, b.homeNode, c.P.Now()+b.hopLatency(), func() { b.release(ep) })
		return
	}
	w := barWaiter{ep: ep, node: src, wake: c.P.Suspend()}
	pr.Net().Send(src, b.homeNode, c.P.Now()+b.hopLatency(), func() { b.register(w) })
	c.P.Park()
}

// SetRunner replaces the engine-driving step Join uses (by default
// Prototype.Run, which drains the queue in one call). The campaign layer
// installs a chunked runner here so a job can honor wall-clock timeouts and
// cancellation between event slices; the replacement must only return once
// the event queue is empty, exactly like Prototype.Run.
func (k *Kernel) SetRunner(run func() sim.Time) { k.runner = run }

// Join runs the simulation until every spawned thread finished.
func (k *Kernel) Join() sim.Time {
	for {
		if k.runner != nil {
			k.runner()
		} else {
			k.pr.Run()
		}
		all := true
		for _, t := range k.threads {
			if !t.Done {
				all = false
				break
			}
		}
		if all {
			return k.pr.Now()
		}
		// Threads still parked with no pending events would be a deadlock.
		panic("kernel: Join: threads blocked with empty event queue")
	}
}
