package kernel

import (
	"fmt"
	"strings"

	"smappic/internal/core"
)

// DeviceTree renders the flattened-device-tree source the boot flow hands
// to the operating system (paper §4.1: "The software reads NUMA parameters
// from the device tree during the boot process"). It describes the harts,
// per-node memory regions with their NUMA node ids, the distance map
// derived from the interconnect (10 local / 25 remote, the convention for
// a 2.5x latency ratio), and the chipset devices.
func (k *Kernel) DeviceTree() string {
	cfg := k.pr.Cfg
	var b strings.Builder
	fmt.Fprintf(&b, "/dts-v1/;\n/ {\n")
	fmt.Fprintf(&b, "\tcompatible = \"smappic,%s\";\n", cfg.Shape())
	fmt.Fprintf(&b, "\t#address-cells = <2>;\n\t#size-cells = <2>;\n\n")

	// CPUs.
	fmt.Fprintf(&b, "\tcpus {\n\t\ttimebase-frequency = <%d>;\n", cfg.ClockMHz*1_000_000)
	for hart := 0; hart < cfg.TotalTiles(); hart++ {
		node := hart / cfg.TilesPerNode
		fmt.Fprintf(&b, "\t\tcpu@%d {\n", hart)
		fmt.Fprintf(&b, "\t\t\tdevice_type = \"cpu\";\n")
		fmt.Fprintf(&b, "\t\t\tcompatible = \"openhwgroup,%s\", \"riscv\";\n", cfg.Core)
		fmt.Fprintf(&b, "\t\t\treg = <%d>;\n", hart)
		fmt.Fprintf(&b, "\t\t\triscv,isa = \"rv64ima\";\n")
		fmt.Fprintf(&b, "\t\t\tnuma-node-id = <%d>;\n", node)
		fmt.Fprintf(&b, "\t\t};\n")
	}
	fmt.Fprintf(&b, "\t};\n\n")

	// Memory regions, one per node, usable bottom half (the top half backs
	// the virtual SD card).
	for n := 0; n < cfg.TotalNodes(); n++ {
		base := k.pr.Map.NodeDRAMBase(n)
		size := k.pr.Map.MainMemorySize()
		fmt.Fprintf(&b, "\tmemory@%x {\n", base)
		fmt.Fprintf(&b, "\t\tdevice_type = \"memory\";\n")
		fmt.Fprintf(&b, "\t\treg = <0x%x 0x%x 0x%x 0x%x>;\n",
			base>>32, base&0xFFFFFFFF, size>>32, size&0xFFFFFFFF)
		fmt.Fprintf(&b, "\t\tnuma-node-id = <%d>;\n", n)
		fmt.Fprintf(&b, "\t};\n")
	}

	// NUMA distance map.
	if cfg.TotalNodes() > 1 {
		fmt.Fprintf(&b, "\n\tdistance-map {\n\t\tcompatible = \"numa-distance-map-v1\";\n")
		fmt.Fprintf(&b, "\t\tdistance-matrix = <")
		for i := 0; i < cfg.TotalNodes(); i++ {
			for j := 0; j < cfg.TotalNodes(); j++ {
				d := 10
				if i != j {
					d = 25 // 2.5x the local latency, as measured in Fig. 7
				}
				fmt.Fprintf(&b, "%d %d %d ", i, j, d)
			}
		}
		fmt.Fprintf(&b, ">;\n\t};\n")
	}

	// Chipset devices (node 0's window; each node mirrors the layout).
	fmt.Fprintf(&b, "\n\tsoc {\n")
	devs := []struct {
		name string
		comp string
		off  uint64
	}{
		{"uart", "ns16550a", core.DevUART0},
		{"uart", "ns16550a", core.DevUART1},
		{"sdhc", "smappic,virtual-sd", core.DevSD},
		{"clint", "riscv,clint0", core.DevCLINT},
		{"plic", "riscv,plic0", core.DevPLIC},
	}
	for _, d := range devs {
		addr := core.DevBase + d.off
		fmt.Fprintf(&b, "\t\t%s@%x {\n\t\t\tcompatible = \"%s\";\n\t\t\treg = <0x%x 0x%x>;\n\t\t};\n",
			d.name, addr, d.comp, addr>>32, addr&0xFFFFFFFF)
	}
	fmt.Fprintf(&b, "\t};\n};\n")
	return b.String()
}
