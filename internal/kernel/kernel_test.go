package kernel

import (
	"fmt"
	"strings"
	"testing"

	"smappic/internal/core"
	"smappic/internal/sim"
)

func proto(t *testing.T, a, b, c int) *core.Prototype {
	t.Helper()
	cfg := core.DefaultConfig(a, b, c)
	cfg.Core = core.CoreNone
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFirstTouchAllocatesLocally(t *testing.T) {
	p := proto(t, 2, 1, 2)
	k := New(p, DefaultConfig())
	buf := k.Alloc(4 * PageBytes)

	// A thread pinned to node 1 touches all pages.
	k.Spawn("t", k.NodeHarts(1), func(c *Ctx) {
		for i := uint64(0); i < 4; i++ {
			c.Store(buf+i*PageBytes, 8, i)
		}
	})
	k.Join()
	for i := uint64(0); i < 4; i++ {
		if got := k.PageNode(buf + i*PageBytes); got != 1 {
			t.Errorf("page %d on node %d, want 1 (first touch)", i, got)
		}
	}
}

func TestBlindAllocationSpreads(t *testing.T) {
	p := proto(t, 4, 1, 2)
	cfg := DefaultConfig()
	cfg.NUMA = false
	k := New(p, cfg)
	buf := k.Alloc(64 * PageBytes)
	k.Spawn("t", []int{0}, func(c *Ctx) {
		for i := uint64(0); i < 64; i++ {
			c.Store(buf+i*PageBytes, 8, i)
		}
	})
	k.Join()
	per := k.PagesPerNode()
	nodesUsed := 0
	for _, n := range per {
		if n > 0 {
			nodesUsed++
		}
	}
	if nodesUsed < 3 {
		t.Fatalf("blind allocation used %d nodes (%v), want spread", nodesUsed, per)
	}
}

func TestDataFlowsThroughVirtualMemory(t *testing.T) {
	p := proto(t, 1, 1, 2)
	k := New(p, DefaultConfig())
	buf := k.Alloc(PageBytes)
	var got uint64
	k.Spawn("w", []int{0}, func(c *Ctx) {
		c.Store(buf+8, 8, 0xBEEF)
		got = c.Load(buf+8, 8)
	})
	k.Join()
	if got != 0xBEEF {
		t.Fatalf("readback = %#x", got)
	}
}

func TestNUMAModeNeverMigrates(t *testing.T) {
	p := proto(t, 2, 1, 2)
	k := New(p, DefaultConfig())
	buf := k.Alloc(PageBytes)
	th := k.Spawn("t", k.AllHarts(), func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.Compute(10_000)
			c.Store(buf, 8, uint64(i))
		}
	})
	k.Join()
	if th.Migrations != 0 {
		t.Fatalf("NUMA-mode thread migrated %d times", th.Migrations)
	}
}

func TestNonNUMAModeMigrates(t *testing.T) {
	p := proto(t, 2, 1, 2)
	cfg := DefaultConfig()
	cfg.NUMA = false
	cfg.Quantum = 5_000
	k := New(p, cfg)
	buf := k.Alloc(PageBytes)
	th := k.Spawn("t", k.AllHarts(), func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Compute(1_000)
			c.Store(buf, 8, uint64(i))
		}
	})
	k.Join()
	if th.Migrations == 0 {
		t.Fatal("non-NUMA thread never migrated")
	}
}

func TestPinnedThreadStaysPut(t *testing.T) {
	p := proto(t, 2, 1, 2)
	cfg := DefaultConfig()
	cfg.NUMA = false
	cfg.Quantum = 1_000
	k := New(p, cfg)
	th := k.Spawn("t", []int{3}, func(c *Ctx) {
		for i := 0; i < 20; i++ {
			c.Compute(2_000)
		}
	})
	k.Join()
	if th.Migrations != 0 || th.Hart() != 3 {
		t.Fatalf("pinned thread moved: hart=%d migrations=%d", th.Hart(), th.Migrations)
	}
}

// TestBootChecksMigrateCostAgainstLookaheads pins the New-time guards: in
// non-NUMA mode a migration must be schedulable on the sharded engine, so a
// MigrateCost below the PCIe lookahead (cross-FPGA moves) or below the
// intra-FPGA interconnect lookahead (cross-node moves on one FPGA, the
// per-node engine's inner window) panics at boot — naming both the cost and
// the violated bound — instead of failing deep inside a migration.
func TestBootChecksMigrateCostAgainstLookaheads(t *testing.T) {
	mustPanic := func(t *testing.T, wantSubstrs []string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("New did not panic")
			}
			msg := fmt.Sprint(r)
			for _, want := range wantSubstrs {
				if !strings.Contains(msg, want) {
					t.Errorf("panic %q does not name %q", msg, want)
				}
			}
		}()
		fn()
	}

	t.Run("cross-fpga-below-pcie-lookahead", func(t *testing.T) {
		p := proto(t, 2, 1, 2)
		cfg := DefaultConfig()
		cfg.NUMA = false
		cfg.MigrateCost = p.Lookahead() - 1
		mustPanic(t, []string{
			fmt.Sprintf("MigrateCost %d", cfg.MigrateCost),
			fmt.Sprintf("PCIe lookahead %d", p.Lookahead()),
		}, func() { New(p, cfg) })
	})

	t.Run("cross-node-below-inner-lookahead", func(t *testing.T) {
		// Single FPGA, two nodes: the PCIe check does not apply (FPGAs == 1),
		// so this row isolates the inner-window bound.
		p := proto(t, 1, 2, 2)
		cfg := DefaultConfig()
		cfg.NUMA = false
		cfg.MigrateCost = p.InnerLookahead() - 1
		mustPanic(t, []string{
			fmt.Sprintf("MigrateCost %d", cfg.MigrateCost),
			fmt.Sprintf("intra-FPGA lookahead %d", p.InnerLookahead()),
		}, func() { New(p, cfg) })
	})

	t.Run("bounds-are-inclusive", func(t *testing.T) {
		// Exactly the lookahead is schedulable: no panic at either level.
		p := proto(t, 2, 2, 2)
		cfg := DefaultConfig()
		cfg.NUMA = false
		cfg.MigrateCost = p.Lookahead()
		New(p, cfg)
	})

	t.Run("numa-mode-skips-the-checks", func(t *testing.T) {
		// NUMA mode never migrates, so a tiny MigrateCost is fine.
		p := proto(t, 2, 2, 2)
		cfg := DefaultConfig()
		cfg.MigrateCost = 1
		New(p, cfg)
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	p := proto(t, 1, 1, 4)
	k := New(p, DefaultConfig())
	bar := k.NewBarrier(4)
	var after []sim.Time
	var slowest sim.Time
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("t", []int{i}, func(c *Ctx) {
			work := sim.Time(1000 * (i + 1))
			c.Compute(work)
			if c.P.Now() > slowest {
				slowest = c.P.Now()
			}
			bar.Wait(c)
			after = append(after, c.P.Now())
		})
	}
	k.Join()
	if len(after) != 4 {
		t.Fatalf("%d threads passed the barrier", len(after))
	}
	for _, ts := range after {
		if ts < slowest {
			t.Fatalf("a thread passed the barrier at %d before the slowest arrival %d", ts, slowest)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	p := proto(t, 1, 1, 2)
	k := New(p, DefaultConfig())
	bar := k.NewBarrier(2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("t", []int{i}, func(c *Ctx) {
			for round := 0; round < 3; round++ {
				c.Compute(sim.Time(100 * (i + 1)))
				bar.Wait(c)
				counts[i]++
			}
		})
	}
	k.Join()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("rounds = %v, want [3 3]", counts)
	}
}

func TestSpawnSpreadsOverAffinity(t *testing.T) {
	p := proto(t, 1, 1, 4)
	k := New(p, DefaultConfig())
	harts := map[int]bool{}
	for i := 0; i < 4; i++ {
		th := k.Spawn("t", k.AllHarts(), func(c *Ctx) {})
		harts[th.Hart()] = true
	}
	if len(harts) != 4 {
		t.Fatalf("threads started on %d distinct harts, want 4", len(harts))
	}
	k.Join()
}

func TestNUMAPlacementAffectsLatency(t *testing.T) {
	// The core experiment mechanism of Figs. 8-9: local-first-touch pages
	// are faster to access than blind-spread pages.
	run := func(numa bool) sim.Time {
		p := proto(t, 2, 1, 2)
		cfg := DefaultConfig()
		cfg.NUMA = numa
		cfg.Seed = 7
		k := New(p, cfg)
		buf := k.Alloc(256 * PageBytes)
		var took sim.Time
		k.Spawn("t", []int{0}, func(c *Ctx) {
			start := c.P.Now()
			// Touch then re-walk: misses go to wherever pages landed.
			for rep := 0; rep < 2; rep++ {
				for i := uint64(0); i < 256; i++ {
					for off := uint64(0); off < PageBytes; off += 512 {
						c.Load(buf+i*PageBytes+off, 8)
					}
				}
			}
			took = c.P.Now() - start
		})
		k.Join()
		return took
	}
	local, spread := run(true), run(false)
	if float64(spread) < float64(local)*1.15 {
		t.Fatalf("NUMA placement effect missing: local=%d spread=%d", local, spread)
	}
}

func TestDeviceTreeDescribesNUMATopology(t *testing.T) {
	p := proto(t, 4, 1, 12)
	k := New(p, DefaultConfig())
	dts := k.DeviceTree()
	if !strings.Contains(dts, "numa-node-id = <3>") {
		t.Error("device tree missing node 3")
	}
	if strings.Count(dts, "device_type = \"cpu\"") != 48 {
		t.Errorf("device tree lists %d cpus, want 48", strings.Count(dts, "device_type = \"cpu\""))
	}
	if strings.Count(dts, "device_type = \"memory\"") != 4 {
		t.Error("device tree should list 4 memory regions")
	}
	if !strings.Contains(dts, "distance-matrix") {
		t.Error("device tree missing NUMA distance map")
	}
	if !strings.Contains(dts, "ns16550a") || !strings.Contains(dts, "riscv,clint0") {
		t.Error("device tree missing chipset devices")
	}
}

func TestDeviceTreeSingleNodeHasNoDistanceMap(t *testing.T) {
	p := proto(t, 1, 1, 2)
	k := New(p, DefaultConfig())
	if strings.Contains(k.DeviceTree(), "distance-matrix") {
		t.Error("single-node system should not emit a distance map")
	}
}
