package kernel

import (
	"fmt"
	"sort"

	"smappic/internal/ckpt"
	"smappic/internal/sim"
)

// Checkpoint support. A kernel state capture is taken at a quiescent
// workload safepoint — all threads parked on one barrier, event queue
// drained — so the only live state is the page table, the barrier's
// released-round watermark and each thread's scheduler context. Restore
// re-boots the kernel, re-runs the workload's (pure) Alloc sequence,
// overlays this state and re-parks freshly spawned threads until a
// finisher wakes them at their recorded resume times in recorded order,
// reproducing the uninterrupted run's event interleaving exactly.

// CaptureState snapshots the kernel at a quiescent safepoint. bar is the
// workload's cut barrier (the one every thread is parked on); captures
// support one barrier, which covers the phase-structured workloads that
// take checkpoints. Serial-only, like all state capture.
func (k *Kernel) CaptureState(bar *Barrier) *ckpt.KernelState {
	k.pr.MustSerial("kernel.CaptureState")
	k.mu.Lock()
	defer k.mu.Unlock()
	st := &ckpt.KernelState{NextVA: k.nextVA}
	if bar != nil {
		st.BarrierReleased = bar.released
	}
	for vp, pa := range k.pageTable {
		st.Pages = append(st.Pages, ckpt.KernelPageState{VPage: vp, Phys: pa, Node: k.pageNode[vp]})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].VPage < st.Pages[j].VPage })
	for _, t := range k.threads {
		ts := ckpt.ThreadState{
			ID:         t.ID,
			Hart:       t.hart,
			RNG:        t.rng.State(),
			NextMigr:   uint64(t.nextMigr),
			Migrations: t.Migrations,
		}
		if bar != nil {
			ts.BarEpoch = t.barEpoch[bar]
		}
		for vp, pa := range t.tlb {
			ts.TLB = append(ts.TLB, ckpt.KernelPageState{VPage: vp, Phys: pa, Node: -1})
		}
		sort.Slice(ts.TLB, func(i, j int) bool { return ts.TLB[i].VPage < ts.TLB[j].VPage })
		st.Threads = append(st.Threads, ts)
	}
	return st
}

// RestoreState overlays a captured page table and barrier watermark onto a
// freshly booted kernel. Call it after re-running the workload's Alloc
// sequence — allocation is a pure address bump, so the replayed sequence
// must land exactly where the checkpointed one did; a NextVA mismatch
// means the restore ran a different allocation script and is rejected.
func (k *Kernel) RestoreState(st *ckpt.KernelState, bar *Barrier) error {
	k.pr.MustSerial("kernel.RestoreState")
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.nextVA != st.NextVA {
		return &ckpt.MismatchError{Field: "kernel heap cursor",
			Got: fmt.Sprintf("%#x", st.NextVA), Want: fmt.Sprintf("%#x", k.nextVA)}
	}
	for _, pg := range st.Pages {
		if pg.Node < 0 || pg.Node >= k.pr.Cfg.TotalNodes() {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("page %#x on node %d of %d", pg.VPage, pg.Node, k.pr.Cfg.TotalNodes())}
		}
		k.pageTable[pg.VPage] = pg.Phys
		k.pageNode[pg.VPage] = pg.Node
	}
	if bar != nil {
		bar.released = st.BarrierReleased
	}
	return nil
}

// Resumer re-spawns checkpointed threads. Each resumed thread applies its
// recorded context and parks immediately; Release then schedules a
// finisher that wakes every thread at its recorded cycle, in recorded
// barrier-exit order, via front-of-cycle scheduling — the same ordering
// class barrier wakeups use, so the resumed event stream matches the
// uninterrupted run's.
type Resumer struct {
	k     *Kernel
	wakes map[int]func()
	ids   map[int]bool
}

// NewResumer prepares thread resumption on a freshly booted serial kernel.
func (k *Kernel) NewResumer() *Resumer {
	k.pr.MustSerial("kernel.NewResumer")
	return &Resumer{k: k, wakes: make(map[int]func()), ids: make(map[int]bool)}
}

// Spawn starts fn as a resumed thread: the body applies ts, parks, and
// only continues (into fn) once Release wakes it at its recorded cycle.
// Threads must be spawned in the same order as the original run so IDs
// line up. bar, when non-nil, receives the thread's barrier epoch.
func (r *Resumer) Spawn(name string, affinity []int, ts ckpt.ThreadState, bar *Barrier, fn func(*Ctx)) (*Thread, error) {
	k := r.k
	if ts.Hart < 0 || ts.Hart >= k.pr.Cfg.TotalTiles() {
		return nil, &ckpt.CorruptError{Reason: fmt.Sprintf("thread %d on hart %d of %d", ts.ID, ts.Hart, k.pr.Cfg.TotalTiles())}
	}
	if ts.ID != len(k.threads) {
		return nil, &ckpt.MismatchError{Field: "thread spawn order",
			Got: fmt.Sprint(ts.ID), Want: fmt.Sprint(len(k.threads))}
	}
	r.ids[ts.ID] = true
	t := k.Spawn(name, affinity, func(c *Ctx) {
		t := c.T
		t.hart = ts.Hart
		t.port = k.pr.PortAt(k.locOf(ts.Hart))
		t.rng.SetState(ts.RNG)
		t.nextMigr = sim.Time(ts.NextMigr)
		t.Migrations = ts.Migrations
		if bar != nil {
			t.barEpoch[bar] = ts.BarEpoch
		}
		for _, pg := range ts.TLB {
			t.tlb[pg.VPage] = pg.Phys
		}
		wake := c.P.Suspend()
		r.wakes[t.ID] = wake
		c.P.Park()
		fn(c)
	})
	return t, nil
}

// Release schedules the wakeups: every resume point's thread resumes at
// its recorded cycle, in slice (barrier-exit) order. Call after all
// Spawns, before running the engine; the finisher runs once the spawned
// bodies have parked.
func (r *Resumer) Release(resume []ckpt.ResumePoint) error {
	for _, rp := range resume {
		if !r.ids[rp.Thread] {
			return &ckpt.CorruptError{Reason: fmt.Sprintf("resume point for unspawned thread %d", rp.Thread)}
		}
	}
	eng := r.k.pr.Eng
	points := append([]ckpt.ResumePoint(nil), resume...)
	eng.Schedule(0, func() {
		for _, rp := range points {
			wake := r.wakes[rp.Thread]
			eng.AtFront(sim.Time(rp.ResumeAt), wake)
		}
	})
	return nil
}
