// Package bridge implements SMAPPIC's inter-node bridge (paper §3.1,
// Fig. 4): the unit that makes large-scale multi-node prototypes possible by
// encapsulating NoC traffic into AXI4 write requests. Nodes on the same FPGA
// are connected through the AXI4 crossbar; nodes on different FPGAs through
// the Hard Shell's AXI4-PCIe transducer — the bridge itself is agnostic, it
// just issues AXI against the address its route table gives it.
//
// Encapsulation follows the paper: the aw channel (request address) carries
// the transfer info — destination node ID, source node ID and flit valid
// bits — and the w channel carries three NoC flits per write. Packets longer
// than three flits are sent as consecutive writes. To guarantee freedom from
// deadlock the NoCs are credit-flow-controlled across the bridge: the
// sending side consumes credits per flit and periodically issues an AXI4
// read to the receiving side, which answers with the number of credits to
// return.
package bridge

import (
	"fmt"
	"sort"

	"smappic/internal/axi"
	"smappic/internal/ckpt"
	"smappic/internal/fault"
	"smappic/internal/noc"
	"smappic/internal/sim"
)

// ChunkFlits is the number of NoC flits carried per AXI4 write (w channel).
const ChunkFlits = 3

// ReconcileFlag marks a credit read as a reconciliation request: the receive
// side answers with its cumulative freed-flit count instead of the increment
// since the last read. The bit sits inside the 16 MB bridge window, above the
// source-node and class fields.
const ReconcileFlag axi.Addr = 1 << 20

const (
	// reconcileInterval is the period of the credit-reconciliation watchdog
	// while packets are stalled on credits (a few PCIe round trips).
	reconcileInterval sim.Time = 2048
	// creditReadFailLimit bounds consecutive failed credit/reconcile reads
	// toward one destination before the bridge declares it wedged and stops
	// polling, leaving the stall visible to the forward-progress watchdog.
	creditReadFailLimit = 4
)

// Envelope is an inter-node NoC packet in flight between bridges. The
// platform's transport wraps coherence/interrupt messages in one.
type Envelope struct {
	SrcNode int
	DstNode int
	// DstPort/DstTile address the packet within the destination node's
	// mesh; the zero DstPort is a tile destination.
	DstPort noc.Port
	DstTile int
	Class   noc.Class
	Flits   int
	Payload any
}

// Params configure the bridge.
type Params struct {
	ProcessDelay  sim.Time // encapsulation/decapsulation latency per side
	CreditsPerDst int      // flit credits per destination node
	// Shaper models a slower inter-node link (paper §3.5); zero values
	// leave the link unshaped.
	ExtraLatency  sim.Time
	BytesPerCycle int
}

// DefaultParams matches the F1 deployment: light bridge pipeline, enough
// credits to cover the PCIe round trip at full rate.
func DefaultParams() Params {
	return Params{ProcessDelay: 5, CreditsPerDst: 24 * ChunkFlits}
}

// Bridge is one node's inter-node bridge.
type Bridge struct {
	eng    *sim.Engine
	mesh   *noc.Mesh
	node   int
	p      Params
	stats  *sim.Stats
	name   string
	out    axi.Target
	shaper *axi.Shaper // non-nil when Params request link shaping
	addrOf func(dstNode int) axi.Addr

	credits    map[int]int       // send credits per destination node
	sendq      map[int][]stalled // packets stalled on credits
	creditRead map[int]bool      // outstanding credit-return read per dst
	returned   map[int]uint64    // cumulative credits received back per dst
	crFails    map[int]int       // consecutive failed credit reads per dst
	wedged     map[int]bool      // dst declared unreachable after crFails limit
	reconArmed map[int]bool      // reconciliation watchdog armed per dst

	freed      map[int]int    // receive side: credits to return per src
	freedTotal map[int]uint64 // receive side: cumulative freed per src

	site   *fault.Site // receive-side fault site ("<name>"), nil when clean
	tracer *sim.Tracer

	hCreditWait *sim.Histogram // cycles spent queued waiting for credits
	gSendq      *sim.Gauge     // total packets stalled on credits
	nStalled    int

	// Pre-resolved hot-path counters (nil and free without stats) and bound
	// callbacks, so the per-packet path does no string building and no
	// closure captures.
	cTxPackets  sim.LazyCounter
	cTxFlits    sim.LazyCounter
	cRxPackets  sim.LazyCounter
	cRxFlits    sim.LazyCounter
	trySendFn   func(any)            // arg is the *Envelope
	rxFn        func(any)            // arg is the *Envelope
	chunkRespFn func(*axi.WriteResp) // non-final chunk completion
}

// chunkData backs the w channel of every encapsulation chunk. The payload
// bytes are never inspected (the envelope rides on the final chunk's User
// field), so all bridges share one read-only buffer instead of allocating
// 24 bytes per chunk.
var chunkData [ChunkFlits * 8]byte

// stalled is one packet queued on credit exhaustion, with the cycle it
// stalled at for wait-time accounting.
type stalled struct {
	env *Envelope
	at  sim.Time
}

// New creates a bridge for the given node and registers it at the mesh's
// bridge port.
func New(eng *sim.Engine, mesh *noc.Mesh, node int, p Params, stats *sim.Stats, name string) *Bridge {
	b := &Bridge{
		eng: eng, mesh: mesh, node: node, p: p, stats: stats, name: name,
		credits:    make(map[int]int),
		sendq:      make(map[int][]stalled),
		creditRead: make(map[int]bool),
		returned:   make(map[int]uint64),
		crFails:    make(map[int]int),
		wedged:     make(map[int]bool),
		reconArmed: make(map[int]bool),
		freed:      make(map[int]int),
		freedTotal: make(map[int]uint64),
	}
	if stats != nil {
		b.hCreditWait = stats.Histogram(name + ".credit_wait")
		b.gSendq = stats.Gauge(name + ".sendq")
	}
	b.cTxPackets = stats.LazyCounter(name + ".tx_packets")
	b.cTxFlits = stats.LazyCounter(name + ".tx_flits")
	b.cRxPackets = stats.LazyCounter(name + ".rx_packets")
	b.cRxFlits = stats.LazyCounter(name + ".rx_flits")
	b.trySendFn = func(env any) { b.trySend(env.(*Envelope)) }
	b.rxFn = func(env any) { b.rx(env.(*Envelope)) }
	b.chunkRespFn = func(r *axi.WriteResp) {
		if !r.OK {
			// Payload chunk lost; the envelope chunk decides the packet's
			// fate, so only the error is recorded here.
			b.count("axi_errors", 1)
		}
	}
	mesh.AttachBridge(b.handleMeshPacket)
	return b
}

// SetInjector resolves this bridge's receive-side fault site (named after the
// bridge itself, e.g. "node1.bridge"). A triggered drop there loses a
// credit-return update — the classic leak the reconciliation watchdog exists
// to repair. Must be called before traffic; nil-safe.
func (b *Bridge) SetInjector(inj *fault.Injector) { b.site = inj.SiteOn(b.name, b.eng) }

// Credits returns the current send-credit level toward dst, for diagnostics
// (the watchdog's stall dump) and tests.
func (b *Bridge) Credits(dst int) int {
	if _, ok := b.credits[dst]; !ok {
		return b.p.CreditsPerDst
	}
	return b.credits[dst]
}

// SetTracer installs an event tracer; tx/rx instants appear on the bridge's
// own track ("<node>.bridge") in exported timelines.
func (b *Bridge) SetTracer(t *sim.Tracer) { b.tracer = t }

// ConnectOut wires the bridge's outbound AXI path: out is the crossbar or
// shell port, addrOf maps a destination node to the AXI address of its
// bridge window. A shaper is inserted when Params request one.
func (b *Bridge) ConnectOut(out axi.Target, addrOf func(dstNode int) axi.Addr) {
	if b.p.ExtraLatency > 0 || b.p.BytesPerCycle > 0 {
		sh := axi.NewShaper(b.eng, out, b.p.ExtraLatency, b.p.BytesPerCycle)
		sh.SetStats(b.stats, b.name+".shaper")
		b.shaper = sh
		out = sh
	}
	b.out = out
	b.addrOf = addrOf
}

func (b *Bridge) count(what string, n uint64) {
	if b.stats != nil {
		b.stats.Counter(b.name + "." + what).Add(n)
	}
}

// handleMeshPacket receives a NoC packet routed to the bridge port
// (northbound out of tile 0) and encapsulates it.
func (b *Bridge) handleMeshPacket(pkt *noc.Packet) {
	env, ok := pkt.Payload.(*Envelope)
	if !ok {
		panic(fmt.Sprintf("bridge: %s: non-envelope payload %T at bridge port", b.name, pkt.Payload))
	}
	b.eng.ScheduleArg(b.p.ProcessDelay, b.trySendFn, env)
}

// trySend transmits env if credits allow, otherwise queues it and arranges
// a credit-return read.
func (b *Bridge) trySend(env *Envelope) {
	if b.out == nil {
		panic(fmt.Sprintf("bridge: %s: not connected", b.name))
	}
	dst := env.DstNode
	if _, ok := b.credits[dst]; !ok {
		b.credits[dst] = b.p.CreditsPerDst
	}
	if len(b.sendq[dst]) > 0 || b.credits[dst] < env.Flits {
		// Preserve order behind already-stalled packets.
		b.sendq[dst] = append(b.sendq[dst], stalled{env: env, at: b.eng.Now()})
		b.nStalled++
		b.gSendq.Set(int64(b.nStalled))
		b.count("credit_stall", 1)
		b.fetchCredits(dst)
		b.armReconcileWatchdog(dst)
		return
	}
	b.credits[dst] -= env.Flits
	b.transmit(env)
}

// transmit issues ceil(flits/3) AXI writes; the last carries the envelope.
// A failed final chunk means the packet never reaches the remote bridge: its
// flits can never be freed there, so the sender reclaims the credits it
// charged and counts the loss instead of leaking them.
func (b *Bridge) transmit(env *Envelope) {
	chunks := (env.Flits + ChunkFlits - 1) / ChunkFlits
	addr := b.addrOf(env.DstNode) |
		axi.Addr(uint64(b.node)<<8) | // source node ID in the address
		axi.Addr(uint64(env.Class)<<4)
	b.cTxPackets.Inc()
	b.cTxFlits.Add(uint64(env.Flits))
	b.tracer.Instant(b.name, sim.CatBridge, "tx")
	for i := 0; i < chunks; i++ {
		req := &axi.WriteReq{
			Addr: addr,
			Data: chunkData[:],
		}
		if i == chunks-1 {
			req.User = env
			b.out.Write(req, func(r *axi.WriteResp) {
				if r.OK {
					return
				}
				b.count("axi_errors", 1)
				b.count("tx_lost", 1)
				b.count("credit_reclaimed", uint64(env.Flits))
				b.credits[env.DstNode] += env.Flits
				b.drain(env.DstNode)
			})
			continue
		}
		b.out.Write(req, b.chunkRespFn)
	}
}

// fetchCredits issues the credit-return AXI read (ar channel) unless one is
// already outstanding toward dst. A failed read escalates to a reconciliation
// read; creditReadFailLimit consecutive failures declare dst wedged and stop
// polling so the stall surfaces to the forward-progress watchdog instead of
// spinning the event queue forever.
func (b *Bridge) fetchCredits(dst int) {
	if b.creditRead[dst] || b.wedged[dst] {
		return
	}
	b.creditRead[dst] = true
	b.count("credit_reads", 1)
	b.out.Read(&axi.ReadReq{
		Addr: b.addrOf(dst) | axi.Addr(uint64(b.node)<<8),
		Len:  8,
	}, func(r *axi.ReadResp) {
		b.creditRead[dst] = false
		if !r.OK {
			b.creditReadFailed(dst)
			return
		}
		b.crFails[dst] = 0
		got := 0
		if cr, ok := r.User.(int); ok {
			got = cr
		}
		b.credits[dst] += got
		b.returned[dst] += uint64(got)
		b.drain(dst)
	})
}

// reconcile issues a reconciliation read: the receiver answers with its
// cumulative freed-flit count, and any gap against the credits this sender
// has actually received back is restored. This repairs credit-return updates
// lost in flight (the receive side decrements its pending count before its
// response is known to arrive).
func (b *Bridge) reconcile(dst int) {
	if b.creditRead[dst] || b.wedged[dst] {
		return
	}
	b.creditRead[dst] = true
	b.count("credit_reconciles", 1)
	b.out.Read(&axi.ReadReq{
		Addr: b.addrOf(dst) | ReconcileFlag | axi.Addr(uint64(b.node)<<8),
		Len:  8,
	}, func(r *axi.ReadResp) {
		b.creditRead[dst] = false
		if !r.OK {
			b.creditReadFailed(dst)
			return
		}
		b.crFails[dst] = 0
		var freedTotal uint64
		if ft, ok := r.User.(uint64); ok {
			freedTotal = ft
		}
		if leaked := int64(freedTotal) - int64(b.returned[dst]); leaked > 0 {
			b.count("credit_restored", uint64(leaked))
			b.credits[dst] += int(leaked)
			if b.credits[dst] > b.p.CreditsPerDst {
				b.credits[dst] = b.p.CreditsPerDst
			}
		}
		b.returned[dst] = freedTotal
		b.drain(dst)
	})
}

// creditReadFailed counts a failed credit read and gives up on dst after the
// limit.
func (b *Bridge) creditReadFailed(dst int) {
	b.count("axi_errors", 1)
	b.crFails[dst]++
	if b.crFails[dst] >= creditReadFailLimit {
		b.wedged[dst] = true
		b.count("dst_wedged", 1)
		return
	}
	// Escalate to reconciliation: the increment the failed read consumed at
	// the receiver is only recoverable from the cumulative count.
	b.eng.Schedule(b.p.ProcessDelay*4, func() { b.reconcile(dst) })
}

// armReconcileWatchdog starts the periodic credit-reconciliation check for
// dst. It runs while packets are stalled toward dst and disarms as soon as
// the queue empties (trySend re-arms on the next stall), so an idle bridge
// schedules nothing.
func (b *Bridge) armReconcileWatchdog(dst int) {
	if b.reconArmed[dst] {
		return
	}
	b.reconArmed[dst] = true
	b.eng.Schedule(reconcileInterval, func() {
		b.reconArmed[dst] = false
		if len(b.sendq[dst]) == 0 || b.wedged[dst] {
			return
		}
		b.reconcile(dst)
		b.armReconcileWatchdog(dst)
	})
}

// drain retries queued packets after credits arrive.
func (b *Bridge) drain(dst int) {
	for len(b.sendq[dst]) > 0 {
		st := b.sendq[dst][0]
		if b.credits[dst] < st.env.Flits {
			// Still short: poll again. The receiver frees credits as it
			// injects, so this terminates (the wedged flag bounds the
			// pathological case of an unreachable receiver).
			b.eng.Schedule(b.p.ProcessDelay*4, func() { b.fetchCredits(dst) })
			return
		}
		b.sendq[dst] = b.sendq[dst][1:]
		b.nStalled--
		b.gSendq.Set(int64(b.nStalled))
		b.hCreditWait.Observe(uint64(b.eng.Now() - st.at))
		b.credits[dst] -= st.env.Flits
		b.transmit(st.env)
	}
}

// CaptureState records the bridge's credit bookkeeping, keyed by peer node.
// The send queue, outstanding credit reads and the reconciliation watchdog
// must be idle (quiescence check): a stalled packet is an in-flight NoC
// transfer and cannot be captured at the bridge layer.
func (b *Bridge) CaptureState() (ckpt.BridgeState, error) {
	if b.nStalled != 0 {
		return ckpt.BridgeState{}, fmt.Errorf("bridge: %s has %d packets stalled on credits; not at a quiescent safepoint", b.name, b.nStalled)
	}
	for dst, outstanding := range b.creditRead {
		if outstanding {
			return ckpt.BridgeState{}, fmt.Errorf("bridge: %s has an outstanding credit read toward node %d; not at a quiescent safepoint", b.name, dst)
		}
	}
	peers := make(map[int]struct{})
	for d := range b.credits {
		peers[d] = struct{}{}
	}
	for d := range b.returned {
		peers[d] = struct{}{}
	}
	for d := range b.freed {
		peers[d] = struct{}{}
	}
	for d := range b.freedTotal {
		peers[d] = struct{}{}
	}
	for d := range b.crFails {
		peers[d] = struct{}{}
	}
	for d := range b.wedged {
		peers[d] = struct{}{}
	}
	var st ckpt.BridgeState
	for d := range peers {
		cr, ok := b.credits[d]
		if !ok {
			cr = b.p.CreditsPerDst
		}
		st.Dsts = append(st.Dsts, ckpt.BridgeDstState{
			Dst:        d,
			Credits:    cr,
			Returned:   b.returned[d],
			Freed:      uint64(b.freed[d]),
			FreedTotal: b.freedTotal[d],
			CrFails:    b.crFails[d],
			Wedged:     b.wedged[d],
		})
	}
	sort.Slice(st.Dsts, func(i, j int) bool { return st.Dsts[i].Dst < st.Dsts[j].Dst })
	if b.shaper != nil {
		st.ShaperBusy = uint64(b.shaper.Busy())
	}
	return st, nil
}

// RestoreState overlays captured credit bookkeeping onto a fresh bridge.
func (b *Bridge) RestoreState(st ckpt.BridgeState) {
	for _, d := range st.Dsts {
		b.credits[d.Dst] = d.Credits
		b.returned[d.Dst] = d.Returned
		b.freed[d.Dst] = int(d.Freed)
		b.freedTotal[d.Dst] = d.FreedTotal
		b.crFails[d.Dst] = d.CrFails
		if d.Wedged {
			b.wedged[d.Dst] = true
		}
	}
	if b.shaper != nil {
		b.shaper.SetBusy(sim.Time(st.ShaperBusy))
	}
}

// Inbound returns the AXI target of this bridge's receive side, to be
// mapped into the node's inbound address decode.
func (b *Bridge) Inbound() axi.Target { return (*inbound)(b) }

type inbound Bridge

// Write receives an encapsulation chunk. Only the final chunk of a packet
// carries the envelope; earlier chunks have paid their bus time already.
func (in *inbound) Write(req *axi.WriteReq, done func(*axi.WriteResp)) {
	b := (*Bridge)(in)
	done(&axi.WriteResp{ID: req.ID, OK: true})
	env, ok := req.User.(*Envelope)
	if !ok {
		return
	}
	b.eng.ScheduleArg(b.p.ProcessDelay, b.rxFn, env)
}

// rx decapsulates a received packet and injects it into the local mesh.
func (b *Bridge) rx(env *Envelope) {
	b.cRxPackets.Inc()
	b.cRxFlits.Add(uint64(env.Flits))
	b.tracer.Instant(b.name, sim.CatBridge, "rx")
	// Inject into the local mesh toward the destination tile; the buffer
	// slot is freed at injection, returning credits to the sender on its
	// next credit read.
	b.freed[env.SrcNode] += env.Flits
	b.freedTotal[env.SrcNode] += uint64(env.Flits)
	b.mesh.Send(&noc.Packet{
		Class:   env.Class,
		Src:     noc.Dest{Port: noc.PortBridge},
		Dst:     noc.Dest{Port: env.DstPort, Tile: env.DstTile},
		Flits:   env.Flits,
		Payload: env.Payload,
	})
}

// Read answers a credit-return request. An incremental read (the common
// case) returns the credits freed since the source's last read; a read with
// ReconcileFlag set returns the cumulative freed count instead, which the
// sender diffs against what it has actually received to restore leaked
// credits. Both zero the pending increment — the cumulative count subsumes
// it.
//
// The bridge's fault site models loss of the credit-return update itself: a
// triggered drop or corruption consumes the pending increment but reports
// zero credits back, leaking them until a reconciliation read repairs the
// gap.
func (in *inbound) Read(req *axi.ReadReq, done func(*axi.ReadResp)) {
	b := (*Bridge)(in)
	src := int(uint64(req.Addr) >> 8 & 0xFF)
	n := b.freed[src]
	b.freed[src] = 0
	if req.Addr&ReconcileFlag != 0 {
		done(&axi.ReadResp{ID: req.ID, Data: make([]byte, 8), OK: true, User: b.freedTotal[src]})
		return
	}
	if fate := b.site.Transfer(); fate.Drop || fate.Corrupt {
		b.count("credit_loss", uint64(n))
		n = 0
	}
	done(&axi.ReadResp{ID: req.ID, Data: make([]byte, 8), OK: true, User: n})
}
