package bridge

import (
	"testing"

	"smappic/internal/axi"
	"smappic/internal/fault"
	"smappic/internal/noc"
	"smappic/internal/pcie"
	"smappic/internal/shell"
	"smappic/internal/sim"
)

// pair builds two nodes (one 2x1 mesh each) on two FPGAs connected through
// shells and the PCIe fabric, with a bridge on each node.
type pair struct {
	eng    *sim.Engine
	fab    *pcie.Fabric
	meshes [2]*noc.Mesh
	bs     [2]*Bridge
	stats  *sim.Stats
}

func newPair(t *testing.T, p Params) *pair {
	t.Helper()
	eng := sim.NewEngine()
	var stats sim.Stats
	fab := pcie.New(eng, pcie.DefaultParams(), &stats)
	pr := &pair{eng: eng, fab: fab, stats: &stats}
	var shells [2]*shell.Shell
	for i := 0; i < 2; i++ {
		shells[i] = shell.New(eng, fab, i, &stats)
		pr.meshes[i] = noc.New(eng, "mesh", noc.DefaultParams(2, 1), &stats)
		pr.bs[i] = New(eng, pr.meshes[i], i, p, &stats, "bridge")
	}
	for i := 0; i < 2; i++ {
		shells[i].SetCustomLogic(pr.bs[i].Inbound())
		out := shells[i].Outbound()
		pr.bs[i].ConnectOut(out, func(dst int) axi.Addr {
			base, _ := fab.Window(dst)
			return base
		})
	}
	return pr
}

// send pushes an envelope from node src tile 0 into the mesh toward the
// bridge port.
func (p *pair) send(src, dst, dstTile, flits int, payload any) {
	p.meshes[src].Send(&noc.Packet{
		Class: noc.NoC1,
		Src:   noc.Dest{Port: noc.PortTile, Tile: 0},
		Dst:   noc.Dest{Port: noc.PortBridge},
		Flits: flits,
		Payload: &Envelope{
			SrcNode: src, DstNode: dst, DstTile: dstTile,
			Class: noc.NoC1, Flits: flits, Payload: payload,
		},
	})
}

func TestCrossFPGADelivery(t *testing.T) {
	p := newPair(t, DefaultParams())
	var got any
	var at sim.Time
	p.meshes[1].AttachTile(1, func(pkt *noc.Packet) { got = pkt.Payload; at = p.eng.Now() })
	p.send(0, 1, 1, 3, "hello")
	p.eng.Run()
	if got != "hello" {
		t.Fatalf("payload = %v, want hello", got)
	}
	// One-way: mesh + bridge 5 + PCIe ~63 + bridge 5 + mesh: ~80-95 cycles.
	if at < 70 || at > 110 {
		t.Fatalf("one-way inter-node latency = %d, want ~80-95", at)
	}
}

func TestMultiChunkPacketArrivesOnce(t *testing.T) {
	p := newPair(t, DefaultParams())
	deliveries := 0
	p.meshes[1].AttachTile(0, func(pkt *noc.Packet) {
		deliveries++
		if pkt.Flits != 9 {
			t.Errorf("flits = %d, want 9", pkt.Flits)
		}
	})
	p.send(0, 1, 0, 9, "data") // 9 flits = 3 AXI writes
	p.eng.Run()
	if deliveries != 1 {
		t.Fatalf("delivered %d times, want 1", deliveries)
	}
	if p.stats.Get("bridge.tx_packets") != 1 {
		t.Error("tx_packets != 1")
	}
}

func TestOrderPreservedSameDestination(t *testing.T) {
	p := newPair(t, DefaultParams())
	var order []int
	p.meshes[1].AttachTile(1, func(pkt *noc.Packet) { order = append(order, pkt.Payload.(int)) })
	for i := 0; i < 10; i++ {
		p.send(0, 1, 1, 3, i)
	}
	p.eng.Run()
	if len(order) != 10 {
		t.Fatalf("delivered %d, want 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered: %v", order)
		}
	}
}

func TestCreditExhaustionStallsThenRecovers(t *testing.T) {
	p := DefaultParams()
	p.CreditsPerDst = 9 // room for just one 9-flit packet
	pr := newPair(t, p)
	got := 0
	pr.meshes[1].AttachTile(0, func(pkt *noc.Packet) { got++ })
	for i := 0; i < 5; i++ {
		pr.send(0, 1, 0, 9, i)
	}
	pr.eng.Run()
	if got != 5 {
		t.Fatalf("delivered %d, want 5 after credit recovery", got)
	}
	if pr.stats.Get("bridge.credit_stall") == 0 {
		t.Error("expected credit stalls")
	}
	if pr.stats.Get("bridge.credit_reads") == 0 {
		t.Error("expected credit-return reads")
	}
}

func TestCreditsNeverGoNegative(t *testing.T) {
	p := DefaultParams()
	p.CreditsPerDst = 12
	pr := newPair(t, p)
	pr.meshes[1].AttachTile(0, func(pkt *noc.Packet) {})
	for i := 0; i < 50; i++ {
		pr.send(0, 1, 0, 3, i)
	}
	pr.eng.Run()
	for dst, c := range pr.bs[0].credits {
		if c < 0 {
			t.Fatalf("credits[%d] = %d, negative", dst, c)
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	pr := newPair(t, DefaultParams())
	a, b := 0, 0
	pr.meshes[0].AttachTile(0, func(pkt *noc.Packet) { a++ })
	pr.meshes[1].AttachTile(0, func(pkt *noc.Packet) { b++ })
	for i := 0; i < 20; i++ {
		pr.send(0, 1, 0, 3, i)
		pr.send(1, 0, 0, 3, i)
	}
	pr.eng.Run()
	if a != 20 || b != 20 {
		t.Fatalf("delivered a=%d b=%d, want 20/20", a, b)
	}
}

func TestShaperSlowsInterNodeLink(t *testing.T) {
	fast := newPair(t, DefaultParams())
	var fastAt sim.Time
	fast.meshes[1].AttachTile(0, func(*noc.Packet) { fastAt = fast.eng.Now() })
	fast.send(0, 1, 0, 3, nil)
	fast.eng.Run()

	p := DefaultParams()
	p.ExtraLatency = 500 // model e.g. a slower Ampere-Altra-class link
	slow := newPair(t, p)
	var slowAt sim.Time
	slow.meshes[1].AttachTile(0, func(*noc.Packet) { slowAt = slow.eng.Now() })
	slow.send(0, 1, 0, 3, nil)
	slow.eng.Run()

	if slowAt < fastAt+400 {
		t.Fatalf("shaper ineffective: fast=%d slow=%d", fastAt, slowAt)
	}
}

func TestSameFPGABridgeOverCrossbar(t *testing.T) {
	// Two nodes in one FPGA connected by an AXI crossbar instead of PCIe
	// (the 1x4x2-style configuration).
	eng := sim.NewEngine()
	var stats sim.Stats
	xbar := axi.NewCrossbar(eng, "xbar", 2, &stats)
	var meshes [2]*noc.Mesh
	var bs [2]*Bridge
	for i := 0; i < 2; i++ {
		meshes[i] = noc.New(eng, "mesh", noc.DefaultParams(2, 1), &stats)
		bs[i] = New(eng, meshes[i], i, DefaultParams(), &stats, "bridge")
	}
	for i := 0; i < 2; i++ {
		xbar.Map(axi.Region{Base: axi.Addr(uint64(i) << 24), Size: 1 << 24, Target: bs[i].Inbound(), Name: "bridge"})
	}
	for i := 0; i < 2; i++ {
		bs[i].ConnectOut(xbar, func(dst int) axi.Addr { return axi.Addr(uint64(dst) << 24) })
	}
	var at sim.Time
	meshes[1].AttachTile(1, func(pkt *noc.Packet) { at = eng.Now() })
	meshes[0].Send(&noc.Packet{
		Class: noc.NoC1,
		Src:   noc.Dest{Port: noc.PortTile, Tile: 0},
		Dst:   noc.Dest{Port: noc.PortBridge},
		Flits: 3,
		Payload: &Envelope{
			SrcNode: 0, DstNode: 1, DstTile: 1,
			Class: noc.NoC1, Flits: 3, Payload: "x",
		},
	})
	eng.Run()
	if at == 0 {
		t.Fatal("same-FPGA inter-node packet not delivered")
	}
	// Crossbar path should be far faster than PCIe (~63 cycles one way).
	if at > 40 {
		t.Fatalf("same-FPGA inter-node latency = %d, want < 40", at)
	}
}

func TestUnconnectedBridgePanics(t *testing.T) {
	eng := sim.NewEngine()
	mesh := noc.New(eng, "mesh", noc.DefaultParams(2, 1), nil)
	New(eng, mesh, 0, DefaultParams(), nil, "bridge")
	mesh.Send(&noc.Packet{
		Class:   noc.NoC1,
		Src:     noc.Dest{Port: noc.PortTile, Tile: 0},
		Dst:     noc.Dest{Port: noc.PortBridge},
		Flits:   3,
		Payload: &Envelope{DstNode: 1, Flits: 3},
	})
	defer func() {
		if recover() == nil {
			t.Error("unconnected bridge did not panic")
		}
	}()
	eng.Run()
}

func TestLeakedCreditsRestoredByReconciliation(t *testing.T) {
	p := DefaultParams()
	p.CreditsPerDst = 9 // room for just one 9-flit packet
	pr := newPair(t, p)
	// Lose the first credit-return update at the receive side: its increment
	// is consumed but zero credits come back — a leak only the cumulative
	// reconciliation read can repair.
	inj := fault.NewInjector(pr.eng, fault.MustParse("bridge.drop:n=1", 5))
	for _, b := range pr.bs {
		b.SetInjector(inj)
	}
	got := 0
	pr.meshes[1].AttachTile(0, func(pkt *noc.Packet) { got++ })
	for i := 0; i < 5; i++ {
		pr.send(0, 1, 0, 9, i)
	}
	pr.eng.Run()
	if got != 5 {
		t.Fatalf("delivered %d/5 after a leaked credit return", got)
	}
	if pr.stats.Get("bridge.credit_loss") == 0 {
		t.Error("credit_loss not counted")
	}
	if pr.stats.Get("bridge.credit_restored") == 0 {
		t.Error("reconciliation restored nothing")
	}
	if c := pr.bs[0].Credits(1); c < 0 || c > p.CreditsPerDst {
		t.Fatalf("credits[1] = %d out of [0, %d]", c, p.CreditsPerDst)
	}
}

func TestWedgedDestinationStopsPolling(t *testing.T) {
	p := DefaultParams()
	p.CreditsPerDst = 9
	pr := newPair(t, p)
	// Hang endpoint 0's PCIe egress after the first packet's chunks (3 writes
	// + headroom for their deliveries): every later chunk and credit read
	// fails after bounded retries.
	inj := fault.NewInjector(pr.eng, fault.MustParse("pcie.ep0.link.hang:after=6", 5))
	pr.fab.SetInjector(inj)
	got := 0
	pr.meshes[1].AttachTile(0, func(pkt *noc.Packet) { got++ })
	for i := 0; i < 3; i++ {
		pr.send(0, 1, 0, 9, i)
	}
	pr.eng.Run() // must terminate: the bridge gives up instead of spinning
	if pr.stats.Get("bridge.dst_wedged") == 0 {
		t.Error("bridge never declared the hung destination wedged")
	}
	if pr.stats.Get("bridge.axi_errors") == 0 {
		t.Error("failed transfers not counted as axi_errors")
	}
	if pr.stats.Get("bridge.tx_lost") == 0 {
		t.Error("lost packets not counted")
	}
	if got >= 3 {
		t.Error("all packets delivered despite a hung link")
	}
}
