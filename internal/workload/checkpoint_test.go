package workload

import (
	"bytes"
	"errors"
	"testing"

	"smappic/internal/ckpt"
	"smappic/internal/core"
	"smappic/internal/fault"
	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// buildCfg is the test configuration: small enough to run fast, multi-node
// so the cut crosses bridge/PCIe state.
func buildCfg(t *testing.T, numa bool, faults string) (core.Config, kernel.Config) {
	t.Helper()
	cfg := core.DefaultConfig(2, 1, 2)
	cfg.Core = core.CoreNone
	if faults != "" {
		plan, err := fault.Parse(faults, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
	}
	kc := kernel.DefaultConfig()
	kc.NUMA = numa
	return cfg, kc
}

func boot(t *testing.T, cfg core.Config, kc kernel.Config) *kernel.Kernel {
	t.Helper()
	pr, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return kernel.New(pr, kc)
}

func testParams() ISParams {
	p := DefaultISParams(4)
	p.Keys = 1 << 12
	p.MaxKey = 1 << 8
	return p
}

// coldRun runs the sort to completion and returns the reference outputs.
func coldRun(t *testing.T, cfg core.Config, kc kernel.Config) (ISResult, []byte, sim.Time) {
	t.Helper()
	k := boot(t, cfg, kc)
	res := RunIS(k, testParams())
	if !res.Sorted {
		t.Fatal("cold run not sorted")
	}
	m, err := k.Prototype().MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return res, m, k.Prototype().Now()
}

// cutAndSnapshot runs with a cut request and returns the encoded snapshot
// (or nil if the run completed before the cut could latch).
func cutAndSnapshot(t *testing.T, cfg core.Config, kc kernel.Config, after sim.Time) ([]byte, int) {
	t.Helper()
	k := boot(t, cfg, kc)
	pr := k.Prototype()
	cut := &CutPlan{After: after}
	_, ic := RunISCut(k, testParams(), cut)
	if ic == nil {
		return nil, 0
	}
	st, err := pr.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	st.Kernel = ic.KernelState()
	st.Workload = ic.WorkloadState()
	snap := &ckpt.Snapshot{
		Kind:       ckpt.KindState,
		ConfigHash: cfg.ConfigHash(),
		Workload:   pr.WorkloadTag,
		Now:        uint64(pr.Now()),
		State:      st,
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st.Workload.Phase
}

// resumeFrom decodes the snapshot, rebuilds, applies state and finishes
// the sort.
func resumeFrom(t *testing.T, cfg core.Config, kc kernel.Config, raw []byte) (ISResult, []byte, sim.Time) {
	t.Helper()
	pr, snap, err := core.RestorePrototype(bytes.NewReader(raw), cfg)
	if err != nil {
		t.Fatalf("RestorePrototype: %v", err)
	}
	if snap.Kind != ckpt.KindState {
		t.Fatalf("snapshot kind %v", snap.Kind)
	}
	k := kernel.New(pr, kc)
	if err := pr.ApplyState(snap.State, false); err != nil {
		t.Fatalf("ApplyState: %v", err)
	}
	res, _, err := ResumeIS(k, testParams(), snap.State.Kernel, snap.State.Workload, nil)
	if err != nil {
		t.Fatalf("ResumeIS: %v", err)
	}
	m, err := pr.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return res, m, pr.Now()
}

// TestISStateRoundTrip cuts the sort at several mid-run cycles, restores
// each snapshot into a fresh build and verifies the continuation is
// byte-identical to the uninterrupted run: same metrics document, same
// checksum, same final time.
func TestISStateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		numa   bool
		faults string
	}{
		{"numa", true, ""},
		{"blind", false, ""},
		{"faulted", true, "node0.bridge.delay:p=0.02,cycles=400;pcie.*.delay:p=0.01,cycles=600"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, kc := buildCfg(t, tc.numa, tc.faults)
			want, wantM, wantNow := coldRun(t, cfg, kc)
			phases := map[int]bool{}
			for _, after := range []sim.Time{1, 20_000, 60_000, 150_000, 400_000} {
				raw, phase := cutAndSnapshot(t, cfg, kc, after)
				if raw == nil {
					t.Logf("after=%d: run completed before cut", after)
					continue
				}
				phases[phase] = true
				got, gotM, gotNow := resumeFrom(t, cfg, kc, raw)
				if got.Checksum != want.Checksum || got.Sorted != want.Sorted {
					t.Errorf("after=%d (phase %d): checksum %016x sorted=%v, want %016x sorted=%v",
						after, phase, got.Checksum, got.Sorted, want.Checksum, want.Sorted)
				}
				if got.Cycles != want.Cycles {
					t.Errorf("after=%d (phase %d): cycles %d, want %d", after, phase, got.Cycles, want.Cycles)
				}
				if gotNow != wantNow {
					t.Errorf("after=%d (phase %d): final time %d, want %d", after, phase, gotNow, wantNow)
				}
				if !bytes.Equal(gotM, wantM) {
					t.Errorf("after=%d (phase %d): metrics JSON differs from uninterrupted run", after, phase)
				}
			}
			if len(phases) < 2 {
				t.Errorf("cuts landed in %d distinct phases; want at least 2 for coverage", len(phases))
			}
		})
	}
}

// TestNoCutAtFinalBoundary pins the rule that the final phase boundary is
// never a cut point. A snapshot latched there captures a run whose sort is
// already complete; the restored run has no phases left to execute, so the
// engine's post-workload drain tail would never be regenerated and the
// final time would land short of the uninterrupted run. A cut requested
// past the last interior boundary must therefore decline to latch rather
// than latch at the end.
func TestNoCutAtFinalBoundary(t *testing.T) {
	cfg, kc := buildCfg(t, true, "")
	_, _, wantNow := coldRun(t, cfg, kc)
	// Any cut request at or beyond the final time can only be reached at
	// the final boundary — it must come back empty, not as a snapshot.
	for _, after := range []sim.Time{wantNow - 1, wantNow, wantNow + 1} {
		raw, phase := cutAndSnapshot(t, cfg, kc, after)
		if raw != nil {
			t.Errorf("after=%d: latched a cut at phase %d; want no cut past the last interior boundary", after, phase)
		}
	}
	// And a snapshot forged with Phase == isPhases must be refused by
	// ResumeIS as corrupt, not silently resumed into a short run.
	raw, _ := cutAndSnapshot(t, cfg, kc, 1)
	if raw == nil {
		t.Fatal("early cut did not latch")
	}
	pr, snap, err := core.RestorePrototype(bytes.NewReader(raw), cfg)
	if err != nil {
		t.Fatalf("RestorePrototype: %v", err)
	}
	k := kernel.New(pr, kc)
	if err := pr.ApplyState(snap.State, false); err != nil {
		t.Fatalf("ApplyState: %v", err)
	}
	snap.State.Workload.Phase = isPhases
	_, _, err = ResumeIS(k, testParams(), snap.State.Kernel, snap.State.Workload, nil)
	var ce *ckpt.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("ResumeIS with final-boundary phase: err = %v, want CorruptError", err)
	}
}

// TestSnapshotRejectsCorruption exercises the typed-error paths: bit flips,
// truncation, version skew and config mismatch must be reported, never
// panic, and never yield a prototype.
func TestSnapshotRejectsCorruption(t *testing.T) {
	cfg, kc := buildCfg(t, true, "")
	raw, _ := cutAndSnapshot(t, cfg, kc, 20_000)
	if raw == nil {
		t.Fatal("cut did not latch")
	}

	t.Run("bitflip", func(t *testing.T) {
		for _, off := range []int{9, len(raw) / 2, len(raw) - 1} {
			bad := append([]byte(nil), raw...)
			bad[off] ^= 0x40
			_, _, err := core.RestorePrototype(bytes.NewReader(bad), cfg)
			if err == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
			var ce *ckpt.CorruptError
			var ve *ckpt.VersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("bit flip at %d: error %T (%v), want typed ckpt error", off, err, err)
			}
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 10, len(raw) - 1} {
			_, _, err := core.RestorePrototype(bytes.NewReader(raw[:n]), cfg)
			var te *ckpt.TruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("truncation to %d: error %T (%v), want TruncatedError", n, err, err)
			}
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[4] ^= 0xFF // version field (LE uint32 after 4-byte magic)
		_, _, err := core.RestorePrototype(bytes.NewReader(bad), cfg)
		var ve *ckpt.VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("version skew: error %T (%v), want VersionError", err, err)
		}
	})

	t.Run("config-mismatch", func(t *testing.T) {
		other := cfg
		other.Seed++
		_, _, err := core.RestorePrototype(bytes.NewReader(raw), other)
		var me *ckpt.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("config mismatch: error %T (%v), want MismatchError", err, err)
		}
	})

	t.Run("workload-mismatch", func(t *testing.T) {
		pr, snap, err := core.RestorePrototype(bytes.NewReader(raw), cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(pr, kc)
		if err := pr.ApplyState(snap.State, false); err != nil {
			t.Fatal(err)
		}
		p := testParams()
		p.Keys *= 2 // different allocation script
		_, _, err = ResumeIS(k, p, snap.State.Kernel, snap.State.Workload, nil)
		var me *ckpt.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("workload mismatch: error %T (%v), want MismatchError", err, err)
		}
	})
}
