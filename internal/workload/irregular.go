package workload

import (
	"fmt"

	"smappic/internal/accel"
	"smappic/internal/cache"
	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// IrregularKernel names one of the Fig. 11 benchmarks.
type IrregularKernel string

const (
	SPMV IrregularKernel = "SPMV" // sparse matrix x dense vector
	SPMM IrregularKernel = "SPMM" // sparse matrix x dense matrix
	SDHP IrregularKernel = "SDHP" // sparse-dense Hadamard product
	BFS  IrregularKernel = "BFS"  // breadth-first search
)

// Kernels lists the Fig. 11 benchmarks in paper order.
var Kernels = []IrregularKernel{SPMV, SPMM, SDHP, BFS}

// IrregularMode selects the execution scheme compared in Fig. 11.
type IrregularMode string

const (
	OneThread  IrregularMode = "1 thread"
	WithMAPLE  IrregularMode = "MAPLE"
	TwoThreads IrregularMode = "2 threads"
)

// IrregularParams configure a Fig. 11 run. The paper uses a 1x1x6
// configuration with Ariane in tiles 0,1,4,5 and MAPLE in tiles 2,3.
type IrregularParams struct {
	Rows      int
	NNZPerRow int
	DenseCols int // SPMM's dense-matrix width
	Seed      uint64
}

// DefaultIrregularParams returns a scaled dataset. The dense operand (16 KiB
// at 2048 rows) exceeds the private caches, so the gather misses the way the
// paper's full datasets do.
func DefaultIrregularParams() IrregularParams {
	return IrregularParams{Rows: 2048, NNZPerRow: 8, DenseCols: 16, Seed: 9}
}

// csr is a synthetic compressed-sparse-row matrix living in simulated
// memory: rowPtr, colIdx, vals plus a dense operand.
type csr struct {
	rows, nnz   int
	rowPtr      uint64 // (rows+1) x 8B
	colIdx      uint64 // nnz x 8B
	vals        uint64 // nnz x 8B
	dense       uint64 // operand: vector (rows x 8B) or matrix
	out         uint64
	denseStride int
}

// buildCSR materializes the dataset through a setup thread so every page is
// touched (and placed) before measurement.
func buildCSR(k *kernel.Kernel, p IrregularParams, denseCols int) *csr {
	m := &csr{
		rows:        p.Rows,
		nnz:         p.Rows * p.NNZPerRow,
		denseStride: denseCols,
	}
	m.rowPtr = k.Alloc(uint64(p.Rows+1) * 8)
	m.colIdx = k.Alloc(uint64(m.nnz) * 8)
	m.vals = k.Alloc(uint64(m.nnz) * 8)
	m.dense = k.Alloc(uint64(p.Rows*denseCols) * 8)
	m.out = k.Alloc(uint64(p.Rows*denseCols) * 8)

	rng := sim.NewRNG(p.Seed)
	k.Spawn("setup", []int{0}, func(c *kernel.Ctx) {
		pos := 0
		for r := 0; r <= p.Rows; r++ {
			c.Store(m.rowPtr+uint64(r)*8, 8, uint64(pos))
			if r < p.Rows {
				pos += p.NNZPerRow
			}
		}
		for i := 0; i < m.nnz; i++ {
			c.Store(m.colIdx+uint64(i)*8, 8, uint64(rng.Intn(p.Rows)))
			c.Store(m.vals+uint64(i)*8, 8, uint64(rng.Intn(100)+1))
		}
		for i := 0; i < p.Rows*denseCols; i++ {
			c.Store(m.dense+uint64(i)*8, 8, uint64(rng.Intn(100)))
		}
	})
	k.Join()
	return m
}

// IrregularResult reports one (kernel, mode) cell of Fig. 11.
type IrregularResult struct {
	Kernel   IrregularKernel
	Mode     IrregularMode
	Cycles   sim.Time
	Checksum uint64
}

// RunIrregular executes one kernel in one mode on a 1x1x6-style prototype.
// Execute threads run on tiles 0 (and 1 for two-thread mode); MAPLE engines
// sit on tiles 2 (and 3).
func RunIrregular(k *kernel.Kernel, kind IrregularKernel, mode IrregularMode, p IrregularParams) IrregularResult {
	denseCols := 1
	if kind == SPMM {
		denseCols = p.DenseCols
	}
	m := buildCSR(k, p, denseCols)
	pr := k.Prototype()

	threads := 1
	if mode == TwoThreads {
		threads = 2
	}
	var engines []*accel.MAPLE
	if mode == WithMAPLE {
		engines = append(engines, accel.NewMAPLE(pr, cache.GID{Node: 0, Tile: 2}, "maple0"))
	}

	bar := k.NewBarrier(threads)
	var checksum uint64
	start := pr.Now()

	for ti := 0; ti < threads; ti++ {
		ti := ti
		lo := ti * m.rows / threads
		hi := (ti + 1) * m.rows / threads
		var eng *accel.MAPLE
		if mode == WithMAPLE {
			eng = engines[0]
			programMAPLE(k, eng, kind, m, lo, hi)
		}
		k.Spawn(fmt.Sprintf("exec%d", ti), []int{ti}, func(c *kernel.Ctx) {
			sum := runRows(c, eng, kind, m, lo, hi)
			bar.Wait(c)
			checksum += sum
		})
	}
	end := k.Join()
	return IrregularResult{Kernel: kind, Mode: mode, Cycles: end - start, Checksum: checksum}
}

// irregularStream enumerates the Access part's address stream — what MAPLE
// is programmed with. Decoupled Access-Execute moves every latency-critical
// load to the engine, so the stream interleaves two fetches per nonzero:
// the operand the kernel needs and the irregular gather. The engine reads
// the column indices itself while generating addresses (its address unit;
// the gather loads it issues are the charged traffic).
func irregularStream(k *kernel.Kernel, kind IrregularKernel, m *csr, lo, hi int) func(i int) (uint64, int, bool) {
	per := nnzOf(m, lo, hi)
	firstNNZ := int(k.Read(m.rowPtr+uint64(lo)*8, 8))
	col := func(j int) uint64 { return k.Read(m.colIdx+uint64(j)*8, 8) }
	return func(i int) (uint64, int, bool) {
		j := firstNNZ + i/2
		if i >= 2*per {
			return 0, 0, false
		}
		second := i%2 == 1
		switch kind {
		case SPMV:
			if !second {
				return k.Translate(m.vals + uint64(j)*8), 8, true
			}
			return k.Translate(m.dense + col(j)*uint64(m.denseStride)*8), 8, true
		case SPMM:
			if !second {
				return k.Translate(m.vals + uint64(j)*8), 8, true
			}
			return k.Translate(m.colIdx + uint64(j)*8), 8, true
		case SDHP:
			if !second {
				return k.Translate(m.vals + uint64(j)*8), 8, true
			}
			return k.Translate(m.dense + col(j)*8), 8, true
		case BFS:
			if !second {
				return k.Translate(m.colIdx + uint64(j)*8), 8, true
			}
			return k.Translate(m.out + col(j)*8), 8, true
		}
		panic("workload: unknown kernel")
	}
}

func programMAPLE(k *kernel.Kernel, eng *accel.MAPLE, kind IrregularKernel, m *csr, lo, hi int) {
	if kind == BFS {
		// BFS's per-visit operands (neighbor id, visited flag) are 32-bit;
		// the engine packs both into one queue entry.
		per := nnzOf(m, lo, hi)
		firstNNZ := int(k.Read(m.rowPtr+uint64(lo)*8, 8))
		eng.ProgramPacked(func(i int) (uint64, uint64, bool) {
			if i >= per {
				return 0, 0, false
			}
			j := firstNNZ + i
			col := k.Read(m.colIdx+uint64(j)*8, 8)
			return k.Translate(m.colIdx + uint64(j)*8), k.Translate(m.out + col*8), true
		})
		return
	}
	eng.Program(irregularStream(k, kind, m, lo, hi))
}

func nnzOf(m *csr, lo, hi int) int {
	return (hi - lo) * (m.nnz / m.rows)
}

// computePer returns the per-element ALU cost that differentiates the
// kernels: SPMM is compute-heavy (a whole dense row per nonzero), the
// others are latency-bound.
func computePer(kind IrregularKernel, denseCols int) sim.Time {
	switch kind {
	case SPMM:
		return sim.Time(4 * denseCols)
	case SPMV:
		return 4
	case SDHP:
		return 3
	case BFS:
		return 6 // frontier bookkeeping
	}
	return 4
}

// runRows executes the Execute part over rows [lo, hi). With MAPLE, every
// latency-critical load is a queue pop (two per nonzero); without it, the
// same values come from demand loads.
func runRows(c *kernel.Ctx, eng *accel.MAPLE, kind IrregularKernel, m *csr, lo, hi int) uint64 {
	var sum uint64
	comp := computePer(kind, m.denseStride)
	pop := func() uint64 {
		v, ok := eng.Fetch(c.P)
		if !ok {
			panic("workload: MAPLE stream ended early")
		}
		return v
	}
	for r := lo; r < hi; r++ {
		p0 := c.Load(m.rowPtr+uint64(r)*8, 8)
		p1 := c.Load(m.rowPtr+uint64(r+1)*8, 8)
		var acc uint64
		for j := p0; j < p1; j++ {
			var v, col, d uint64
			if eng != nil {
				switch kind {
				case SPMV, SDHP:
					v, d = pop(), pop()
				case SPMM:
					v, col = pop(), pop()
					d = c.Load(m.dense+col*uint64(m.denseStride)*8, 8)
				case BFS:
					packed := pop()
					c.Compute(2) // unpack
					col, d = packed&0xFFFFFFFF, packed>>32
				}
			} else {
				switch kind {
				case SPMV:
					col = c.Load(m.colIdx+j*8, 8)
					v = c.Load(m.vals+j*8, 8)
					d = c.Load(m.dense+col*uint64(m.denseStride)*8, 8)
				case SPMM:
					col = c.Load(m.colIdx+j*8, 8)
					v = c.Load(m.vals+j*8, 8)
					d = c.Load(m.dense+col*uint64(m.denseStride)*8, 8)
				case SDHP:
					col = c.Load(m.colIdx+j*8, 8)
					v = c.Load(m.vals+j*8, 8)
					d = c.Load(m.dense+col*8, 8)
				case BFS:
					col = c.Load(m.colIdx+j*8, 8)
					d = c.Load(m.out+col*8, 8)
				}
			}
			switch kind {
			case SPMM:
				// Stream the rest of the dense row (sequential, cheap).
				for e := 1; e < m.denseStride; e++ {
					c.Load(m.dense+(col*uint64(m.denseStride)+uint64(e))*8, 8)
				}
				acc += v * d
			case BFS:
				if d == 0 {
					// Mark visited. With MAPLE the update is decoupled
					// (the engine's store path); standalone cores pay the
					// full write-permission round trip.
					if eng != nil {
						c.StoreAsync(m.out+col*8, 8, 1)
					} else {
						c.Store(m.out+col*8, 8, 1)
					}
					acc++
				}
			default:
				acc += v * d
			}
			c.Compute(comp)
		}
		if kind != BFS {
			c.Store(m.out+uint64(r)*uint64(m.denseStride)*8, 8, acc)
		}
		sum += acc
	}
	return sum
}
