package workload

import (
	"testing"

	"smappic/internal/accel"
	"smappic/internal/core"
	"smappic/internal/kernel"
)

// newSystem builds a CoreNone prototype with a booted kernel.
func newSystem(t *testing.T, a, b, c int, numa bool) *kernel.Kernel {
	t.Helper()
	cfg := core.DefaultConfig(a, b, c)
	cfg.Core = core.CoreNone
	pr, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kc := kernel.DefaultConfig()
	kc.NUMA = numa
	return kernel.New(pr, kc)
}

func TestISSortsCorrectly(t *testing.T) {
	k := newSystem(t, 1, 1, 4, true)
	p := DefaultISParams(4)
	p.Keys = 1 << 12
	p.MaxKey = 1 << 8
	res := RunIS(k, p)
	if !res.Sorted {
		t.Fatal("IS output not sorted")
	}
	if res.Cycles == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestISSortsAcrossNodes(t *testing.T) {
	k := newSystem(t, 2, 1, 2, true)
	p := DefaultISParams(4)
	p.Keys = 1 << 12
	p.MaxKey = 1 << 8
	res := RunIS(k, p)
	if !res.Sorted {
		t.Fatal("multi-node IS output not sorted")
	}
	if k.Prototype().Stats.Get("node0.bridge.tx_packets") == 0 {
		t.Error("multi-node IS generated no inter-node traffic")
	}
}

func TestISNUMAOnFasterThanOff(t *testing.T) {
	// The Fig. 8 mechanism at small scale: NUMA-aware placement beats
	// topology-blind placement on a multi-node system.
	run := func(numa bool) float64 {
		k := newSystem(t, 2, 1, 2, numa)
		p := DefaultISParams(4)
		p.Keys = 1 << 12
		p.MaxKey = 1 << 8
		res := RunIS(k, p)
		if !res.Sorted {
			t.Fatal("not sorted")
		}
		return float64(res.Cycles)
	}
	on, off := run(true), run(false)
	if off <= on {
		t.Fatalf("NUMA off (%v) not slower than on (%v)", off, on)
	}
}

func TestISScalesWithThreads(t *testing.T) {
	run := func(threads int) float64 {
		k := newSystem(t, 1, 1, 8, true)
		p := DefaultISParams(threads)
		p.Keys = 1 << 12
		p.MaxKey = 1 << 8
		return float64(RunIS(k, p).Cycles)
	}
	t1, t8 := run(1), run(8)
	if t8 >= t1 {
		t.Fatalf("no strong scaling: 1T=%v 8T=%v", t1, t8)
	}
	if t1/t8 < 2 {
		t.Fatalf("scaling too weak: speedup %.2f at 8 threads", t1/t8)
	}
}

func TestISDeterministic(t *testing.T) {
	run := func() uint64 {
		k := newSystem(t, 1, 1, 2, true)
		p := DefaultISParams(2)
		p.Keys = 1 << 10
		p.MaxKey = 1 << 6
		return uint64(RunIS(k, p).Cycles)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("IS runtime not reproducible: %d vs %d", a, b)
	}
}

func irregularSystem(t *testing.T) *kernel.Kernel {
	k := newSystem(t, 1, 1, 6, true)
	return k
}

func TestIrregularKernelsRunInAllModes(t *testing.T) {
	p := DefaultIrregularParams()
	p.Rows = 64
	for _, kind := range Kernels {
		var checksums []uint64
		for _, mode := range []IrregularMode{OneThread, WithMAPLE, TwoThreads} {
			k := irregularSystem(t)
			res := RunIrregular(k, kind, mode, p)
			if res.Cycles == 0 {
				t.Fatalf("%s/%s took no time", kind, mode)
			}
			checksums = append(checksums, res.Checksum)
		}
		// SPMV/SPMM/SDHP are mode-independent functionally; BFS's visit
		// order (and hence its checksum) legitimately depends on timing.
		if kind != BFS && (checksums[0] != checksums[1] || checksums[0] != checksums[2]) {
			t.Errorf("%s checksums differ across modes: %v", kind, checksums)
		}
	}
}

func TestMAPLEHelpsLatencyBoundKernels(t *testing.T) {
	p := DefaultIrregularParams()
	for _, kind := range []IrregularKernel{SPMV, BFS} {
		base := RunIrregular(irregularSystem(t), kind, OneThread, p)
		map1 := RunIrregular(irregularSystem(t), kind, WithMAPLE, p)
		speedup := float64(base.Cycles) / float64(map1.Cycles)
		if speedup < 1.3 {
			t.Errorf("%s MAPLE speedup = %.2f, want > 1.3 (latency-bound)", kind, speedup)
		}
	}
}

func TestMAPLEDoesNotHelpComputeBoundSPMM(t *testing.T) {
	p := DefaultIrregularParams()
	base := RunIrregular(irregularSystem(t), SPMM, OneThread, p)
	mapl := RunIrregular(irregularSystem(t), SPMM, WithMAPLE, p)
	speedup := float64(base.Cycles) / float64(mapl.Cycles)
	if speedup > 1.25 {
		t.Errorf("SPMM MAPLE speedup = %.2f; paper shows ~1.0 (compute bound)", speedup)
	}
}

func TestTwoThreadsSpeedUp(t *testing.T) {
	p := DefaultIrregularParams()
	base := RunIrregular(irregularSystem(t), SPMV, OneThread, p)
	two := RunIrregular(irregularSystem(t), SPMV, TwoThreads, p)
	speedup := float64(base.Cycles) / float64(two.Cycles)
	if speedup < 1.2 || speedup > 2.1 {
		t.Errorf("SPMV 2-thread speedup = %.2f, want in (1.2, 2.1)", speedup)
	}
}

// noiseSystem builds the paper's 1x1x2 GNG configuration: Ariane slot in
// tile 0, GNG in tile 1.
func noiseSystem(t *testing.T) *kernel.Kernel {
	k := newSystem(t, 1, 1, 2, true)
	pr := k.Prototype()
	pr.Nodes[0].Tiles[1].Accel = accel.NewGNG(1, pr.Stats, "gng")
	return k
}

func TestNoiseGeneratorModesOrdered(t *testing.T) {
	p := DefaultNoiseParams()
	p.Samples = 1024
	var prev float64
	for i, mode := range NoiseModes {
		res := RunNoiseGenerator(noiseSystem(t), mode, p)
		cycles := float64(res.Cycles)
		if i > 0 && cycles >= prev {
			t.Fatalf("mode %s (%v cycles) not faster than previous (%v)", mode, cycles, prev)
		}
		prev = cycles
	}
}

func TestNoiseSpeedupBands(t *testing.T) {
	p := DefaultNoiseParams()
	p.Samples = 2048
	sw := float64(RunNoiseGenerator(noiseSystem(t), NoiseSW, p).Cycles)
	h1 := float64(RunNoiseGenerator(noiseSystem(t), NoiseHW1, p).Cycles)
	h4 := float64(RunNoiseGenerator(noiseSystem(t), NoiseHW4, p).Cycles)
	s1, s4 := sw/h1, sw/h4
	// Paper Fig. 10 benchmark A: 12x / 32x. Shape: large, increasing.
	if s1 < 5 || s1 > 25 {
		t.Errorf("HW1 speedup = %.1f, want ~12", s1)
	}
	if s4 < s1*1.5 {
		t.Errorf("HW4 speedup %.1f should clearly exceed HW1 %.1f", s4, s1)
	}
}

func TestNoiseApplierSmallerSpeedups(t *testing.T) {
	// Benchmark B accelerates a smaller fraction of the work, so its
	// speedups must be below benchmark A's (Amdahl).
	p := DefaultNoiseParams()
	p.Samples = 2048
	p.ApplyLen = 2048
	genSW := float64(RunNoiseGenerator(noiseSystem(t), NoiseSW, p).Cycles)
	genH4 := float64(RunNoiseGenerator(noiseSystem(t), NoiseHW4, p).Cycles)
	appSW := float64(RunNoiseApplier(noiseSystem(t), NoiseSW, p).Cycles)
	appH4 := float64(RunNoiseApplier(noiseSystem(t), NoiseHW4, p).Cycles)
	genSpeed := genSW / genH4
	appSpeed := appSW / appH4
	if appSpeed >= genSpeed {
		t.Fatalf("applier speedup %.1f not below generator speedup %.1f", appSpeed, genSpeed)
	}
	if appSpeed < 2 {
		t.Fatalf("applier speedup %.1f too small; paper shows ~13x for HW4", appSpeed)
	}
}

func TestGNGTrafficCounted(t *testing.T) {
	k := noiseSystem(t)
	p := DefaultNoiseParams()
	p.Samples = 256
	RunNoiseGenerator(k, NoiseHW2, p)
	if k.Prototype().Stats.Get("gng.samples") < 256 {
		t.Error("GNG fetch counters not advancing")
	}
}
