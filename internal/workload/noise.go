package workload

import (
	"smappic/internal/accel"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// NoiseMode is one bar group of Fig. 10: software generation on the Ariane
// core, or hardware fetches returning 1, 2 or 4 packed 16-bit samples per
// non-cacheable load.
type NoiseMode string

const (
	NoiseSW  NoiseMode = "SW"
	NoiseHW1 NoiseMode = "1"
	NoiseHW2 NoiseMode = "2"
	NoiseHW4 NoiseMode = "4"
)

// NoiseModes lists the Fig. 10 execution modes in paper order.
var NoiseModes = []NoiseMode{NoiseSW, NoiseHW1, NoiseHW2, NoiseHW4}

// NoiseParams configure the GNG benchmarks. The paper generates 64 MB of
// noise (benchmark A) and applies noise to a 32 MB sequence (benchmark B);
// runs here scale the volume down.
type NoiseParams struct {
	Samples  int // benchmark A: 16-bit samples to generate
	ApplyLen int // benchmark B: bytes of input sequence
	// UnpackCost models the shift/mask instructions per sample when
	// multiple samples arrive packed in one register.
	UnpackCost sim.Time
	// LoopCost models loop and store overhead per sample.
	LoopCost sim.Time
}

// DefaultNoiseParams returns a scaled workload.
func DefaultNoiseParams() NoiseParams {
	return NoiseParams{Samples: 4096, ApplyLen: 2048, UnpackCost: 3, LoopCost: 2}
}

// NoiseResult is one bar of Fig. 10.
type NoiseResult struct {
	Mode   NoiseMode
	Cycles sim.Time
}

// gngAddr returns the MMIO address of the GNG fetch register on node 0
// tile 1 (the paper's 1x1x2 configuration: Ariane in tile 0, GNG in tile 1).
func gngAddr(mode NoiseMode) uint64 {
	base := core.DevBase + core.DevAccel + uint64(1)<<16
	switch mode {
	case NoiseHW1:
		return base + accel.GNGFetch1
	case NoiseHW2:
		return base + accel.GNGFetch2
	case NoiseHW4:
		return base + accel.GNGFetch4
	}
	return base
}

func samplesPerFetch(mode NoiseMode) int {
	switch mode {
	case NoiseHW2:
		return 2
	case NoiseHW4:
		return 4
	}
	return 1
}

// RunNoiseGenerator is benchmark A ("Noise generator"): produce p.Samples
// 16-bit noise values into a local buffer and compare the modes.
func RunNoiseGenerator(k *kernel.Kernel, mode NoiseMode, p NoiseParams) NoiseResult {
	out := k.Alloc(uint64(p.Samples) * 2)
	pr := k.Prototype()
	start := pr.Now()
	k.Spawn("noisegen", []int{0}, func(c *kernel.Ctx) {
		generateNoise(c, mode, p, out, p.Samples)
	})
	end := k.Join()
	return NoiseResult{Mode: mode, Cycles: end - start}
}

// generateNoise writes n samples to buf using the selected mode.
func generateNoise(c *kernel.Ctx, mode NoiseMode, p NoiseParams, buf uint64, n int) {
	if mode == NoiseSW {
		sw := accel.NewSoftwareGNG(7)
		for i := 0; i < n; i++ {
			c.Compute(accel.SWCyclesPerSample)
			c.Store(buf+uint64(i)*2, 2, uint64(uint16(sw.Sample())))
			c.Compute(p.LoopCost)
		}
		return
	}
	per := samplesPerFetch(mode)
	addr := gngAddr(mode)
	for i := 0; i < n; i += per {
		v := c.MMIOLoad(addr, 8)
		for s := 0; s < per && i+s < n; s++ {
			if per > 1 {
				c.Compute(p.UnpackCost)
			}
			c.Store(buf+uint64(i+s)*2, 2, v>>(16*s)&0xFFFF)
			c.Compute(p.LoopCost)
		}
	}
}

// RunNoiseApplier is benchmark B ("Noise applier"): convert noise to 8-bit
// integers and apply it to a p.ApplyLen-byte sequence.
func RunNoiseApplier(k *kernel.Kernel, mode NoiseMode, p NoiseParams) NoiseResult {
	in := k.Alloc(uint64(p.ApplyLen))
	out := k.Alloc(uint64(p.ApplyLen))
	pr := k.Prototype()

	// Materialize the input (setup, not measured).
	k.Spawn("setup", []int{0}, func(c *kernel.Ctx) {
		for i := 0; i < p.ApplyLen; i += 8 {
			c.Store(in+uint64(i), 8, uint64(i)*0x0101010101010101)
		}
	})
	k.Join()

	start := pr.Now()
	k.Spawn("apply", []int{0}, func(c *kernel.Ctx) {
		sw := accel.NewSoftwareGNG(7)
		per := samplesPerFetch(mode)
		addr := gngAddr(mode)
		var packed uint64
		have := 0
		for i := 0; i < p.ApplyLen; i++ {
			// Acquire one noise sample.
			var sample uint64
			if mode == NoiseSW {
				c.Compute(accel.SWCyclesPerSample)
				sample = uint64(uint16(sw.Sample()))
			} else {
				if have == 0 {
					packed = c.MMIOLoad(addr, 8)
					have = per
				}
				sample = packed & 0xFFFF
				packed >>= 16
				have--
				if per > 1 {
					c.Compute(p.UnpackCost)
				}
			}
			// Convert to 8-bit and apply to the sequence element.
			b := c.Load(in+uint64(i), 1)
			c.Compute(20) // scale, saturate, add (branchy byte math)
			c.Store(out+uint64(i), 1, (b+sample>>8)&0xFF)
			c.Compute(p.LoopCost)
		}
	})
	end := k.Join()
	return NoiseResult{Mode: mode, Cycles: end - start}
}
