// Package workload implements the benchmarks of the paper's case studies:
// the NAS Parallel Benchmarks integer sort (Figs. 8-9), the irregular
// kernels used to evaluate MAPLE (Fig. 11: SPMV, SPMM, SDHP, BFS), and the
// Gaussian-noise benchmarks used to evaluate the GNG accelerator (Fig. 10).
//
// All workloads are execution-driven: they run as mini-kernel threads whose
// loads and stores traverse the prototype's full memory system, so NUMA
// placement, coherence traffic and interconnect congestion shape the
// results the same way they do on the real platform. Data really flows:
// the integer sort's output is verifiably sorted.
//
// The integer sort additionally supports checkpoint cuts: a CutPlan asks
// the run to stop at the first phase barrier reached at or past a cycle,
// with every thread's resume cursor recorded, so the campaign layer can
// snapshot the quiescent machine and later resume (ResumeIS) with a
// byte-identical continuation.
package workload

import (
	"fmt"

	"smappic/internal/ckpt"
	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// ISParams configure the integer sort. The paper runs NPB class C
// (134M keys); runs here scale the key count down and report scaled times
// (see EXPERIMENTS.md).
type ISParams struct {
	Keys    int // total keys
	MaxKey  int // key range (buckets)
	Threads int
	// Affinity restricts the threads to these harts (taskset); nil means
	// all harts.
	Affinity []int
	// ComputePerKey models the per-element ALU work of the real kernel.
	ComputePerKey sim.Time
	// Seed drives key generation; 0 selects the historical default, so
	// existing callers keep their exact key streams.
	Seed uint64
}

// DefaultISParams returns a scaled-down class-C-shaped problem.
func DefaultISParams(threads int) ISParams {
	return ISParams{
		Keys:          1 << 15,
		MaxKey:        1 << 10,
		Threads:       threads,
		ComputePerKey: 4,
		Seed:          12345,
	}
}

// Tag canonically names this workload instance. Snapshots record it, and
// restore refuses a snapshot whose tag differs from the restoring run's —
// the same guard ConfigHash provides for the hardware configuration.
func (p ISParams) Tag() string {
	seed := p.Seed
	if seed == 0 {
		seed = 12345
	}
	return fmt.Sprintf("is:keys=%d;maxkey=%d;threads=%d;affinity=%v;cpk=%d;seed=%d",
		p.Keys, p.MaxKey, p.Threads, p.Affinity, p.ComputePerKey, seed)
}

// ISResult reports one run.
type ISResult struct {
	Cycles  sim.Time
	Seconds float64 // at the prototype clock
	Sorted  bool
	// Checksum is an FNV-1a hash of the fully sorted output. Two runs of
	// the same problem must agree byte-for-byte regardless of timing — the
	// fault-tolerance ablation uses it to prove injected faults were
	// recovered, not papered over.
	Checksum uint64
}

// isPhases is how many barrier-terminated phases the sort has.
const isPhases = 5

// CutPlan requests a checkpoint cut: the run stops at the first phase
// barrier whose first exiter is at or past After, with every thread of
// that round recording its resume cursor as it leaves the barrier. The
// decision is made once per barrier round — by the round's first exiter,
// which in serial execution is always the round's last arriver, the
// earliest thread out — so either the whole round stops or the whole
// round proceeds; the plan is a pure function of simulated time and adds
// no events, keeping a cut-armed run byte-identical to an unarmed one up
// to the cut.
type CutPlan struct {
	// After is the request threshold in absolute cycles; zero disables.
	After sim.Time

	decided int // highest boundary whose latch decision was made
	bound   int // latched boundary; 0 = none
	resume  []ckpt.ResumePoint
}

// DidCut reports whether the run stopped at a cut barrier.
func (cp *CutPlan) DidCut() bool { return cp != nil && cp.bound != 0 }

// arrived runs as each thread returns from the barrier at the given phase
// boundary; true tells the thread to record its cursor and exit.
func (cp *CutPlan) arrived(c *kernel.Ctx, ti, boundary int) bool {
	if cp == nil || cp.After == 0 {
		return false
	}
	if boundary > cp.decided {
		cp.decided = boundary
		// The final boundary is never a cut point: the sort is already
		// complete there apart from the engine's drain tail, which a
		// restored run has no work left to regenerate — cutting would
		// shift the final time. (A checkpoint there saves nothing anyway.)
		if cp.bound == 0 && boundary < isPhases && c.P.Now() >= cp.After {
			cp.bound = boundary
		}
	}
	if cp.bound == 0 {
		return false
	}
	cp.resume = append(cp.resume, ckpt.ResumePoint{Thread: ti, ResumeAt: uint64(c.P.Now())})
	return true
}

// ISCut is a completed cut: the quiescent run's software-side snapshot
// sections. The caller captures the hardware sections (core.CaptureState)
// alongside and assembles the full snapshot.
type ISCut struct {
	k   *kernel.Kernel
	bar *kernel.Barrier
	ws  ckpt.WorkloadState
}

// KernelState captures the mini-OS section (page table, thread contexts,
// barrier watermark) of the quiescent cut.
func (ic *ISCut) KernelState() *ckpt.KernelState { return ic.k.CaptureState(ic.bar) }

// WorkloadState returns the workload cursor: completed phases and the
// barrier-exit-ordered resume points.
func (ic *ISCut) WorkloadState() *ckpt.WorkloadState {
	ws := ic.ws
	return &ws
}

// isRun bundles the state the phase bodies share; the same structure
// drives cold runs and resumed runs so both execute identical code.
type isRun struct {
	k          *kernel.Kernel
	p          ISParams
	perThread  int
	bucketsPer int
	seed       uint64
	cut        *CutPlan

	// Memory layout (virtual; pages placed by the kernel's policy). The
	// allocation script is pure address bumping, so a resumed run replays
	// it to land every buffer exactly where the checkpointed run did.
	keys, hist, recv, offs []uint64
	counts                 uint64
	bar                    *kernel.Barrier
}

// newISRun defaults the parameters and replays the allocation script.
func newISRun(k *kernel.Kernel, p ISParams, cut *CutPlan) *isRun {
	if p.Affinity == nil {
		p.Affinity = k.AllHarts()
	}
	t := p.Threads
	r := &isRun{k: k, p: p, cut: cut, perThread: p.Keys / t}
	if r.perThread == 0 {
		panic("workload: fewer keys than threads")
	}
	r.bucketsPer = p.MaxKey / t
	if r.bucketsPer == 0 {
		panic("workload: fewer buckets than threads")
	}
	r.keys = make([]uint64, t)
	r.hist = make([]uint64, t)
	r.recv = make([]uint64, t)
	r.offs = make([]uint64, t)
	for i := 0; i < t; i++ {
		r.keys[i] = k.Alloc(uint64(r.perThread) * 4)
		r.hist[i] = k.Alloc(uint64(p.MaxKey) * 4)
		r.recv[i] = k.Alloc(uint64(2*r.perThread) * 4)
		r.offs[i] = k.Alloc(uint64(t) * 8)
	}
	r.counts = k.Alloc(uint64(t) * 8) // received-key counts
	r.bar = k.NewBarrier(t)
	r.seed = p.Seed
	if r.seed == 0 {
		r.seed = 12345
	}
	k.Prototype().WorkloadTag = p.Tag()
	return r
}

// affinityOf returns thread ti's taskset. NUMA-aware scheduling keeps each
// thread on its starting hart, spread evenly over the mask (so 12 threads
// on 4 nodes land 3 per node); the topology-blind scheduler lets threads
// migrate within the mask (paper §4.1, §4.3).
func (r *isRun) affinityOf(ti int) []int {
	if r.k.NUMA() {
		return []int{r.p.Affinity[(ti*len(r.p.Affinity)/r.p.Threads)%len(r.p.Affinity)]}
	}
	return r.p.Affinity
}

// phases runs phase bodies from..5, each terminated by the barrier and a
// cut check; a latched cut makes the thread record its cursor and exit.
func (r *isRun) phases(c *kernel.Ctx, ti, from int) {
	for ph := from; ph <= isPhases; ph++ {
		r.phase(c, ti, ph)
		r.bar.Wait(c)
		if r.cut.arrived(c, ti, ph) {
			return
		}
	}
}

// phase runs one phase body (without the trailing barrier). Every phase is
// self-contained — no locals carry across the barrier — which is what
// makes the sort resumable at any boundary.
func (r *isRun) phase(c *kernel.Ctx, ti, ph int) {
	p, t := r.p, r.p.Threads
	myLo := uint64(ti * r.bucketsPer)
	myHi := myLo + uint64(r.bucketsPer)
	if ti == t-1 {
		myHi = uint64(p.MaxKey)
	}
	switch ph {
	case 1:
		// Key generation (first touch places the pages).
		rng := sim.NewRNG(r.seed + uint64(ti))
		for i := 0; i < r.perThread; i++ {
			key := uint64(rng.Intn(p.MaxKey))
			c.Store(r.keys[ti]+uint64(i)*4, 4, key)
			c.Compute(p.ComputePerKey)
		}

	case 2:
		// Local histogram.
		for i := 0; i < r.perThread; i++ {
			key := c.Load(r.keys[ti]+uint64(i)*4, 4)
			hAddr := r.hist[ti] + key*4
			c.Store(hAddr, 4, c.Load(hAddr, 4)+1)
			c.Compute(p.ComputePerKey)
		}

	case 3:
		// Histogram exchange. Each thread reads every thread's counts for
		// its own bucket range and computes the per-source write offsets
		// into its receive buffer. The last thread absorbs the remainder
		// buckets when MaxKey does not divide evenly.
		var cursor uint64
		for src := 0; src < t; src++ {
			var fromSrc uint64
			for b := myLo; b < myHi; b++ {
				fromSrc += c.Load(r.hist[src]+b*4, 4)
			}
			c.Store(r.offs[ti]+uint64(src)*8, 8, cursor)
			cursor += fromSrc
			c.Compute(8)
		}
		c.Store(r.counts+uint64(ti)*8, 8, cursor)

	case 4:
		// Redistribution. Each thread scatters its keys to the bucket
		// owners' receive buffers (the all-to-all that stresses the
		// inter-node interconnect).
		writePos := make([]uint64, t)
		for dst := 0; dst < t; dst++ {
			writePos[dst] = c.Load(r.offs[dst]+uint64(ti)*8, 8)
		}
		for i := 0; i < r.perThread; i++ {
			key := c.Load(r.keys[ti]+uint64(i)*4, 4)
			dst := int(key) / r.bucketsPer
			if dst >= t {
				dst = t - 1
			}
			c.Store(r.recv[dst]+writePos[dst]*4, 4, key)
			writePos[dst]++
			c.Compute(p.ComputePerKey)
		}

	case 5:
		// Local ranking (counting sort of received keys).
		n := c.Load(r.counts+uint64(ti)*8, 8)
		local := make([]uint64, myHi-myLo)
		for i := uint64(0); i < n; i++ {
			key := c.Load(r.recv[ti]+i*4, 4)
			local[key-myLo]++
			c.Compute(p.ComputePerKey)
		}
		var pos uint64
		for b := 0; b < int(myHi-myLo); b++ {
			for j := uint64(0); j < local[b]; j++ {
				c.Store(r.recv[ti]+pos*4, 4, myLo+uint64(b))
				pos++
				c.Compute(1)
			}
		}
	}
}

// verify checks and hashes the sorted output: concatenated receive buffers
// must be globally sorted. The checksum folds every output key into an
// FNV-1a hash, giving a single value that detects any corruption the
// sortedness check misses (e.g. a flipped bit that preserves order).
func (r *isRun) verify(end, start sim.Time) ISResult {
	pr := r.k.Prototype()
	res := ISResult{
		Cycles:  end - start,
		Seconds: pr.Seconds(end - start),
		Sorted:  true,
	}
	last := uint64(0)
	sum := uint64(14695981039346656037)
	for ti := 0; ti < r.p.Threads; ti++ {
		n := r.k.Read(r.counts+uint64(ti)*8, 8)
		for i := uint64(0); i < n; i++ {
			v := r.k.Read(r.recv[ti]+i*4, 4)
			if v < last {
				res.Sorted = false
			}
			last = v
			sum = (sum ^ v) * 1099511628211
		}
	}
	res.Checksum = sum
	return res
}

// RunIS executes the parallel bucket sort on a booted kernel and returns
// the measured runtime. The algorithm follows NPB IS: key generation,
// per-thread histogram, global histogram exchange (all-to-all), key
// redistribution into bucket owners, and local ranking.
func RunIS(k *kernel.Kernel, p ISParams) ISResult {
	res, _ := RunISCut(k, p, nil)
	return res
}

// RunISCut is RunIS with an optional checkpoint cut. A nil (or zero) plan
// runs to completion exactly like RunIS. When the plan latches, the run
// stops quiescent at that barrier and the returned ISCut carries the
// software snapshot sections; the ISResult is then zero (the sort is
// unfinished).
func RunISCut(k *kernel.Kernel, p ISParams, cut *CutPlan) (ISResult, *ISCut) {
	r := newISRun(k, p, cut)
	pr := k.Prototype()
	start := pr.Now()
	for ti := 0; ti < p.Threads; ti++ {
		ti := ti
		k.Spawn(fmt.Sprintf("is%d", ti), r.affinityOf(ti), func(c *kernel.Ctx) {
			r.phases(c, ti, 1)
		})
	}
	end := k.Join()
	if cut.DidCut() {
		return ISResult{}, &ISCut{k: k, bar: r.bar, ws: ckpt.WorkloadState{
			Name: "is", Phase: cut.bound, Start: uint64(start), Resume: cut.resume}}
	}
	return r.verify(end, start), nil
}

// ResumeIS continues a checkpointed sort on a freshly booted kernel whose
// prototype already has the hardware state sections applied. It replays
// the allocation script, overlays the kernel section, re-parks every
// thread and wakes each at its recorded cycle in recorded order, so the
// continuation's event stream matches the uninterrupted run's exactly. A
// further cut may be requested, enabling periodic checkpoint chains.
func ResumeIS(k *kernel.Kernel, p ISParams, ks *ckpt.KernelState, ws *ckpt.WorkloadState, cut *CutPlan) (ISResult, *ISCut, error) {
	if ws == nil || ks == nil {
		return ISResult{}, nil, &ckpt.CorruptError{Reason: "state snapshot without kernel/workload sections"}
	}
	if ws.Name != "is" {
		return ISResult{}, nil, &ckpt.MismatchError{Field: "workload name", Got: ws.Name, Want: "is"}
	}
	if ws.Phase < 1 || ws.Phase >= isPhases {
		return ISResult{}, nil, &ckpt.CorruptError{Reason: fmt.Sprintf("cut at phase %d of %d", ws.Phase, isPhases)}
	}
	r := newISRun(k, p, cut)
	if len(ws.Resume) != p.Threads || len(ks.Threads) != p.Threads {
		return ISResult{}, nil, &ckpt.MismatchError{Field: "thread count",
			Got:  fmt.Sprintf("%d resume points, %d thread contexts", len(ws.Resume), len(ks.Threads)),
			Want: fmt.Sprint(p.Threads)}
	}
	if err := k.RestoreState(ks, r.bar); err != nil {
		return ISResult{}, nil, err
	}
	res := k.NewResumer()
	for ti := 0; ti < p.Threads; ti++ {
		ti := ti
		if _, err := res.Spawn(fmt.Sprintf("is%d", ti), r.affinityOf(ti), ks.Threads[ti], r.bar, func(c *kernel.Ctx) {
			r.phases(c, ti, ws.Phase+1)
		}); err != nil {
			return ISResult{}, nil, err
		}
	}
	if err := res.Release(ws.Resume); err != nil {
		return ISResult{}, nil, err
	}
	end := k.Join()
	if cut.DidCut() {
		return ISResult{}, &ISCut{k: k, bar: r.bar, ws: ckpt.WorkloadState{
			Name: "is", Phase: cut.bound, Start: ws.Start, Resume: cut.resume}}, nil
	}
	return r.verify(end, sim.Time(ws.Start)), nil, nil
}
