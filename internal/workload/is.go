// Package workload implements the benchmarks of the paper's case studies:
// the NAS Parallel Benchmarks integer sort (Figs. 8-9), the irregular
// kernels used to evaluate MAPLE (Fig. 11: SPMV, SPMM, SDHP, BFS), and the
// Gaussian-noise benchmarks used to evaluate the GNG accelerator (Fig. 10).
//
// All workloads are execution-driven: they run as mini-kernel threads whose
// loads and stores traverse the prototype's full memory system, so NUMA
// placement, coherence traffic and interconnect congestion shape the
// results the same way they do on the real platform. Data really flows:
// the integer sort's output is verifiably sorted.
package workload

import (
	"fmt"

	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// ISParams configure the integer sort. The paper runs NPB class C
// (134M keys); runs here scale the key count down and report scaled times
// (see EXPERIMENTS.md).
type ISParams struct {
	Keys    int // total keys
	MaxKey  int // key range (buckets)
	Threads int
	// Affinity restricts the threads to these harts (taskset); nil means
	// all harts.
	Affinity []int
	// ComputePerKey models the per-element ALU work of the real kernel.
	ComputePerKey sim.Time
	// Seed drives key generation; 0 selects the historical default, so
	// existing callers keep their exact key streams.
	Seed uint64
}

// DefaultISParams returns a scaled-down class-C-shaped problem.
func DefaultISParams(threads int) ISParams {
	return ISParams{
		Keys:          1 << 15,
		MaxKey:        1 << 10,
		Threads:       threads,
		ComputePerKey: 4,
		Seed:          12345,
	}
}

// ISResult reports one run.
type ISResult struct {
	Cycles  sim.Time
	Seconds float64 // at the prototype clock
	Sorted  bool
	// Checksum is an FNV-1a hash of the fully sorted output. Two runs of
	// the same problem must agree byte-for-byte regardless of timing — the
	// fault-tolerance ablation uses it to prove injected faults were
	// recovered, not papered over.
	Checksum uint64
}

// RunIS executes the parallel bucket sort on a booted kernel and returns
// the measured runtime. The algorithm follows NPB IS: key generation,
// per-thread histogram, global histogram exchange (all-to-all), key
// redistribution into bucket owners, and local ranking.
func RunIS(k *kernel.Kernel, p ISParams) ISResult {
	if p.Affinity == nil {
		p.Affinity = k.AllHarts()
	}
	t := p.Threads
	perThread := p.Keys / t
	if perThread == 0 {
		panic("workload: fewer keys than threads")
	}
	bucketsPer := p.MaxKey / t
	if bucketsPer == 0 {
		panic("workload: fewer buckets than threads")
	}

	// Memory layout (virtual; pages placed by the kernel's policy).
	keys := make([]uint64, t) // input keys, first-touched by owner
	hist := make([]uint64, t) // per-thread histogram
	recv := make([]uint64, t) // redistribution target, 2x slack
	offs := make([]uint64, t) // per-(src,dst) write cursors
	for i := 0; i < t; i++ {
		keys[i] = k.Alloc(uint64(perThread) * 4)
		hist[i] = k.Alloc(uint64(p.MaxKey) * 4)
		recv[i] = k.Alloc(uint64(2*perThread) * 4)
		offs[i] = k.Alloc(uint64(t) * 8)
	}
	counts := k.Alloc(uint64(t) * 8) // received-key counts

	bar := k.NewBarrier(t)
	seed := p.Seed
	if seed == 0 {
		seed = 12345
	}

	pr := k.Prototype()
	start := pr.Now()
	for ti := 0; ti < t; ti++ {
		ti := ti
		// NUMA-aware scheduling keeps each thread on its starting hart,
		// spread evenly over the taskset mask (so 12 threads on 4 nodes
		// land 3 per node); the topology-blind scheduler lets threads
		// migrate within the mask (paper §4.1, §4.3).
		aff := p.Affinity
		if k.NUMA() {
			aff = []int{p.Affinity[(ti*len(p.Affinity)/t)%len(p.Affinity)]}
		}
		k.Spawn(fmt.Sprintf("is%d", ti), aff, func(c *kernel.Ctx) {
			rng := sim.NewRNG(seed + uint64(ti))

			// Phase 1: key generation (first touch places the pages).
			for i := 0; i < perThread; i++ {
				key := uint64(rng.Intn(p.MaxKey))
				c.Store(keys[ti]+uint64(i)*4, 4, key)
				c.Compute(p.ComputePerKey)
			}
			bar.Wait(c)

			// Phase 2: local histogram.
			for i := 0; i < perThread; i++ {
				key := c.Load(keys[ti]+uint64(i)*4, 4)
				hAddr := hist[ti] + key*4
				c.Store(hAddr, 4, c.Load(hAddr, 4)+1)
				c.Compute(p.ComputePerKey)
			}
			bar.Wait(c)

			// Phase 3: histogram exchange. Each thread reads every
			// thread's counts for its own bucket range and computes the
			// per-source write offsets into its receive buffer. The last
			// thread absorbs the remainder buckets when MaxKey does not
			// divide evenly.
			var cursor uint64
			myLo := uint64(ti * bucketsPer)
			myHi := myLo + uint64(bucketsPer)
			if ti == t-1 {
				myHi = uint64(p.MaxKey)
			}
			for src := 0; src < t; src++ {
				var fromSrc uint64
				for b := myLo; b < myHi; b++ {
					fromSrc += c.Load(hist[src]+b*4, 4)
				}
				c.Store(offs[ti]+uint64(src)*8, 8, cursor)
				cursor += fromSrc
				c.Compute(8)
			}
			c.Store(counts+uint64(ti)*8, 8, cursor)
			bar.Wait(c)

			// Phase 4: redistribution. Each thread scatters its keys to
			// the bucket owners' receive buffers (the all-to-all that
			// stresses the inter-node interconnect).
			writePos := make([]uint64, t)
			for dst := 0; dst < t; dst++ {
				writePos[dst] = c.Load(offs[dst]+uint64(ti)*8, 8)
			}
			for i := 0; i < perThread; i++ {
				key := c.Load(keys[ti]+uint64(i)*4, 4)
				dst := int(key) / bucketsPer
				if dst >= t {
					dst = t - 1
				}
				c.Store(recv[dst]+writePos[dst]*4, 4, key)
				writePos[dst]++
				c.Compute(p.ComputePerKey)
			}
			bar.Wait(c)

			// Phase 5: local ranking (counting sort of received keys).
			n := c.Load(counts+uint64(ti)*8, 8)
			local := make([]uint64, myHi-myLo)
			for i := uint64(0); i < n; i++ {
				key := c.Load(recv[ti]+i*4, 4)
				local[key-myLo]++
				c.Compute(p.ComputePerKey)
			}
			var pos uint64
			for b := 0; b < int(myHi-myLo); b++ {
				for j := uint64(0); j < local[b]; j++ {
					c.Store(recv[ti]+pos*4, 4, myLo+uint64(b))
					pos++
					c.Compute(1)
				}
			}
			bar.Wait(c)
		})
	}
	end := k.Join()

	res := ISResult{
		Cycles:  end - start,
		Seconds: pr.Seconds(end - start),
		Sorted:  true,
	}
	// Verification: concatenated receive buffers must be globally sorted.
	// The checksum folds every output key into an FNV-1a hash, giving a
	// single value that detects any corruption the sortedness check misses
	// (e.g. a flipped bit that preserves order).
	last := uint64(0)
	sum := uint64(14695981039346656037)
	for ti := 0; ti < t; ti++ {
		n := k.Read(counts+uint64(ti)*8, 8)
		for i := uint64(0); i < n; i++ {
			v := k.Read(recv[ti]+i*4, 4)
			if v < last {
				res.Sorted = false
			}
			last = v
			sum = (sum ^ v) * 1099511628211
		}
	}
	res.Checksum = sum
	return res
}
