package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// ShardingResult compares the sharded engine's granularities on a 48-core
// NUMA configuration (2 FPGAs x 2 nodes x 12 tiles): the serial reference,
// per-FPGA shards, and per-node shards under the hierarchical synchronizer.
// The three runs must be byte-identical — the wall-clock columns are the
// only thing granularity is allowed to change.
type ShardingResult struct {
	Shape       string
	GOMAXPROCS  int
	SerialMS    float64
	FPGAMS      float64
	NodeMS      float64
	Cycles      sim.Time
	Identical   bool
	FPGASpeedup float64 // serial / per-FPGA
	NodeSpeedup float64 // serial / per-node
	NodeVsFPGA  float64 // per-FPGA / per-node
}

// shardingRun executes the NPB-IS fixture once in one engine mode and
// returns wall-clock, simulated cycles and the metrics document.
func shardingRun(parallel int, granularity string, keys int) (time.Duration, sim.Time, []byte) {
	cfg := core.DefaultConfig(2, 2, 12)
	cfg.Core = core.CoreNone
	cfg.Parallel = parallel
	cfg.ShardGranularity = granularity
	p, err := core.Build(cfg)
	if err != nil {
		panic(err)
	}
	k := kernel.New(p, kernel.DefaultConfig())
	ip := workload.DefaultISParams(p.Cfg.TotalTiles())
	ip.Keys = keys
	start := time.Now()
	r := workload.RunIS(k, ip)
	wall := time.Since(start)
	if !r.Sorted {
		panic("sharding: integer sort output not sorted")
	}
	m, err := p.MetricsJSON()
	if err != nil {
		panic(err)
	}
	return wall, r.Cycles, m
}

// Sharding runs the granularity comparison, best of two runs per mode to
// cut scheduler noise. Per-node sharding exposes four engines on this
// shape where per-FPGA exposes two, so on a >=4-core host the node column
// should win; on fewer cores the extra barriers are overhead and the
// comparison records that honestly (see GOMAXPROCS in the result).
func Sharding(quick bool) ShardingResult {
	keys := 1 << 13
	if quick {
		keys = 1 << 11
	}
	measure := func(parallel int, granularity string) (time.Duration, sim.Time, []byte) {
		best, cycles, m := shardingRun(parallel, granularity, keys)
		if again, _, _ := shardingRun(parallel, granularity, keys); again < best {
			best = again
		}
		return best, cycles, m
	}
	serial, cycles, mSerial := measure(0, "")
	fpga, cFPGA, mFPGA := measure(2, "fpga")
	node, cNode, mNode := measure(2, "node")

	res := ShardingResult{
		Shape:      "2x2x12",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SerialMS:   serial.Seconds() * 1e3,
		FPGAMS:     fpga.Seconds() * 1e3,
		NodeMS:     node.Seconds() * 1e3,
		Cycles:     cycles,
		Identical: cycles == cFPGA && cycles == cNode &&
			bytes.Equal(mSerial, mFPGA) && bytes.Equal(mSerial, mNode),
		FPGASpeedup: serial.Seconds() / fpga.Seconds(),
		NodeSpeedup: serial.Seconds() / node.Seconds(),
		NodeVsFPGA:  fpga.Seconds() / node.Seconds(),
	}
	snapshotMetrics("sharding/serial", mSerial)
	snapshotMetrics("sharding/per-fpga", mFPGA)
	snapshotMetrics("sharding/per-node", mNode)
	return res
}

// String renders the granularity comparison.
func (r ShardingResult) String() string {
	id := "byte-identical"
	if !r.Identical {
		id = "DIVERGED (bug)"
	}
	return fmt.Sprintf(
		"Sharding granularity (%s NPB-IS, %d cycles, GOMAXPROCS=%d): serial %.1f ms, per-FPGA %.1f ms (%.2fx), per-node %.1f ms (%.2fx serial, %.2fx per-FPGA); outputs %s",
		r.Shape, r.Cycles, r.GOMAXPROCS, r.SerialMS, r.FPGAMS, r.FPGASpeedup,
		r.NodeMS, r.NodeSpeedup, r.NodeVsFPGA, id)
}
