package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/accel"
	"smappic/internal/kernel"
	"smappic/internal/workload"
)

// Fig10Result is the GNG accelerator evaluation (paper Fig. 10).
type Fig10Result struct {
	// Speedup[benchmark][mode], relative to the SW mode.
	GenSpeedup   map[workload.NoiseMode]float64
	ApplySpeedup map[workload.NoiseMode]float64
}

// gngSystem builds the paper's 1x1x2 configuration: Ariane slot in tile 0,
// GNG accelerator in tile 1.
func gngSystem() *kernel.Kernel {
	p := newPrototype(1, 1, 2)
	p.Nodes[0].Tiles[1].Accel = accel.NewGNG(1, p.StatsForNode(0), "gng")
	return kernel.New(p, kernel.DefaultConfig())
}

// Fig10 runs both noise benchmarks in all four modes.
func Fig10(quick bool) Fig10Result {
	np := workload.DefaultNoiseParams()
	if quick {
		np.Samples = 1024
		np.ApplyLen = 512
	}
	res := Fig10Result{
		GenSpeedup:   make(map[workload.NoiseMode]float64),
		ApplySpeedup: make(map[workload.NoiseMode]float64),
	}
	var genSW, appSW float64
	for _, mode := range workload.NoiseModes {
		genSys, appSys := gngSystem(), gngSystem()
		g := workload.RunNoiseGenerator(genSys, mode, np)
		a := workload.RunNoiseApplier(appSys, mode, np)
		snapshot(fmt.Sprintf("fig10/gen/%v", mode), genSys.Prototype())
		snapshot(fmt.Sprintf("fig10/apply/%v", mode), appSys.Prototype())
		if mode == workload.NoiseSW {
			genSW, appSW = float64(g.Cycles), float64(a.Cycles)
		}
		res.GenSpeedup[mode] = genSW / float64(g.Cycles)
		res.ApplySpeedup[mode] = appSW / float64(a.Cycles)
	}
	return res
}

// String renders Fig. 10's bar values.
func (r Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: GNG accelerator speedup over software (paper: A: 1/12/21/32; B: 1/7.4/10/13)\n")
	fmt.Fprintf(&b, "%-22s", "Mode")
	for _, m := range workload.NoiseModes {
		fmt.Fprintf(&b, "%8s", m)
	}
	fmt.Fprintf(&b, "\n%-22s", "A: Noise generator")
	for _, m := range workload.NoiseModes {
		fmt.Fprintf(&b, "%8.1f", r.GenSpeedup[m])
	}
	fmt.Fprintf(&b, "\n%-22s", "B: Noise applier")
	for _, m := range workload.NoiseModes {
		fmt.Fprintf(&b, "%8.1f", r.ApplySpeedup[m])
	}
	b.WriteByte('\n')
	return b.String()
}

// Fig11Result is the MAPLE evaluation (paper Fig. 11).
type Fig11Result struct {
	// Speedup[kernel][mode], relative to single-thread execution.
	Speedup map[workload.IrregularKernel]map[workload.IrregularMode]float64
}

// Fig11 runs the four irregular kernels in the three execution modes on
// the paper's 1x1x6 configuration (cores in tiles 0/1, MAPLE in tile 2).
func Fig11(quick bool) Fig11Result {
	// The dataset must exceed the private caches even in quick mode, or
	// the gather stops missing and MAPLE has nothing to hide; the full
	// parameters already run in seconds.
	p := workload.DefaultIrregularParams()
	_ = quick
	res := Fig11Result{Speedup: make(map[workload.IrregularKernel]map[workload.IrregularMode]float64)}
	for _, kind := range workload.Kernels {
		res.Speedup[kind] = make(map[workload.IrregularMode]float64)
		var base float64
		for _, mode := range []workload.IrregularMode{workload.OneThread, workload.WithMAPLE, workload.TwoThreads} {
			k := kernel.New(newPrototype(1, 1, 6), kernel.DefaultConfig())
			r := workload.RunIrregular(k, kind, mode, p)
			snapshot(fmt.Sprintf("fig11/%v/%v", kind, mode), k.Prototype())
			if mode == workload.OneThread {
				base = float64(r.Cycles)
			}
			res.Speedup[kind][mode] = base / float64(r.Cycles)
		}
	}
	return res
}

// String renders Fig. 11's bar values.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: MAPLE engine speedup over 1 thread (paper: SPMV 2.4/1.6, SPMM 1.0/1.4, SDHP 1.9/1.2, BFS 2.2/1.8)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "Kernel", "1 thread", "MAPLE", "2 threads")
	for _, kind := range workload.Kernels {
		fmt.Fprintf(&b, "%-8s %10.1f %10.1f %10.1f\n", kind,
			r.Speedup[kind][workload.OneThread],
			r.Speedup[kind][workload.WithMAPLE],
			r.Speedup[kind][workload.TwoThreads])
	}
	return b.String()
}
