package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/fault"
	"smappic/internal/kernel"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// AblationFaultTolerance stresses the recovery machinery end to end: the
// Fig. 7 latency probe and a scaled NPB-IS run on a 4-node system under
// increasing PCIe loss rates. Correctness must be binary — every run
// delivers the byte-identical sorted output — while runtime degrades
// gracefully as retransmissions eat link bandwidth.

// FaultToleranceRow is one loss-rate point of the sweep.
type FaultToleranceRow struct {
	DropP          float64  // per-transfer PCIe drop probability
	ProbeLatency   sim.Time // Fig. 7 inter-node probe under this loss rate
	Cycles         sim.Time // scaled NPB-IS runtime
	Checksum       uint64   // FNV-1a of the sorted output
	Sorted         bool
	Retransmits    uint64 // pcie.ep*.retransmits
	LinkFailed     uint64 // pcie.ep*.link_failed (exhausted retries)
	CreditRestored uint64 // bridge reconciliation repairs
	EccCorrected   uint64 // DRAM single-bit upsets corrected by SECDED
}

// AblationFaultToleranceResult is the full sweep.
type AblationFaultToleranceResult struct {
	Rows []FaultToleranceRow
	// Identical reports whether every lossy run produced the exact output
	// of the fault-free run.
	Identical bool
	// MaxSlowdown is the worst runtime ratio versus the fault-free run.
	MaxSlowdown float64
}

// faultToleranceLossRates is the swept per-transfer drop probability.
var faultToleranceLossRates = []float64{0, 0.01, 0.02, 0.05}

// AblationFaultTolerance runs the sweep on a 4x1x2 prototype (4 nodes, so
// every IS all-to-all phase crosses the PCIe fabric).
func AblationFaultTolerance() AblationFaultToleranceResult {
	run := func(p float64) FaultToleranceRow {
		row := FaultToleranceRow{DropP: p}
		// Besides the swept PCIe loss, every lossy run also loses two
		// credit-return updates per bridge (repaired by reconciliation)
		// and takes four single-bit DRAM upsets per channel (repaired by
		// SECDED), so all three recovery paths are exercised at once.
		plan := func() *fault.Plan {
			if p == 0 {
				return nil
			}
			return fault.MustParse(fmt.Sprintf(
				"pcie.*.drop:p=%g;*.bridge.drop:n=2;*.dram.flip:n=4", p), 7)
		}

		// Fig. 7 probe: one inter-node dirty-line read, separate prototype
		// so the probe's scratch traffic cannot perturb the IS run.
		{
			cfg := core.DefaultConfig(4, 1, 2)
			cfg.Core = core.CoreNone
			cfg.Faults = plan()
			proto, err := core.Build(cfg)
			if err != nil {
				panic(err)
			}
			row.ProbeLatency = proto.MeasureLatency(
				cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 0}, 1)
		}

		// Scaled NPB-IS across all four nodes.
		// No watchdog here: its periodic checks outlive the workload and
		// would inflate the post-drain engine time Join measures. The
		// hang-to-diagnosis path has its own end-to-end test in core.
		cfg := core.DefaultConfig(4, 1, 2)
		cfg.Core = core.CoreNone
		cfg.Faults = plan()
		proto, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		k := kernel.New(proto, kernel.DefaultConfig())
		ip := workload.DefaultISParams(8)
		ip.Keys = 1 << 12
		r := workload.RunIS(k, ip)
		row.Cycles = r.Cycles
		row.Checksum = r.Checksum
		row.Sorted = r.Sorted
		row.Retransmits = sumSuffix(proto, ".retransmits")
		row.LinkFailed = sumSuffix(proto, ".link_failed")
		row.CreditRestored = sumSuffix(proto, ".credit_restored")
		row.EccCorrected = sumSuffix(proto, ".ecc_corrected")
		snapshot(fmt.Sprintf("ablation-faults/p=%g", p), proto)
		return row
	}

	res := AblationFaultToleranceResult{Identical: true, MaxSlowdown: 1}
	for _, p := range faultToleranceLossRates {
		res.Rows = append(res.Rows, run(p))
	}
	base := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if row.Checksum != base.Checksum || !row.Sorted {
			res.Identical = false
		}
		if s := float64(row.Cycles) / float64(base.Cycles); s > res.MaxSlowdown {
			res.MaxSlowdown = s
		}
	}
	return res
}

// sumSuffix totals every counter whose name ends in suffix (the registry's
// Sum only matches prefixes, but the recovery counters are per-endpoint).
func sumSuffix(p *core.Prototype, suffix string) uint64 {
	var total uint64
	for _, name := range p.Stats.Names() {
		if strings.HasSuffix(name, suffix) {
			total += p.Stats.Get(name)
		}
	}
	return total
}

// String renders the sweep.
func (r AblationFaultToleranceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (fault tolerance): Fig. 7 probe + scaled NPB-IS on 4x1x2 under PCIe loss\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s %10s %8s %18s\n",
		"drop p", "probe (cyc)", "IS (cyc)", "retransmits", "link_failed", "cred_rest", "ecc_fix", "output checksum")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8g %12d %12d %12d %12d %10d %8d %18x\n",
			row.DropP, row.ProbeLatency, row.Cycles, row.Retransmits, row.LinkFailed,
			row.CreditRestored, row.EccCorrected, row.Checksum)
	}
	if r.Identical {
		fmt.Fprintf(&b, "all outputs byte-identical to the fault-free run; worst slowdown %.2fx\n", r.MaxSlowdown)
	} else {
		fmt.Fprintf(&b, "OUTPUT DIVERGED under loss — recovery failed\n")
	}
	return b.String()
}
