package experiments

import (
	"context"
	"fmt"
	"runtime"

	"smappic/internal/bridge"
	"smappic/internal/campaign"
)

// isSeed keeps the ported sweeps on the exact key streams the pre-campaign
// experiments used (workload.RunIS's historical default).
const isSeed = 12345

// runCampaign executes a spec on the campaign engine with one worker per
// CPU and no cache, panicking on any failed point — experiment figures are
// all-or-nothing, exactly as the hand-rolled loops were. Outcomes come back
// in expansion order, so callers can map them deterministically.
func runCampaign(spec campaign.Spec) []campaign.JobOutcome {
	r := &campaign.Runner{Workers: runtime.GOMAXPROCS(0)}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: campaign %s: %v", spec.Name, err))
	}
	for _, out := range res.Jobs {
		if out.Status != campaign.StatusRun {
			panic(fmt.Sprintf("experiments: campaign %s: job %s: %s (%s)",
				spec.Name, out.Job.Params.Label(), out.Status, out.Err))
		}
	}
	return res.Jobs
}

// BuiltinSpec resolves a named builtin sweep for smappic-fleet. quick
// shrinks the problem sizes the same way the figure helpers' quick mode
// does.
func BuiltinSpec(name string, quick bool) (campaign.Spec, bool) {
	for _, s := range BuiltinSpecs(quick) {
		if s.Name == name {
			return s, true
		}
	}
	return campaign.Spec{}, false
}

// BuiltinSpecs lists the sweeps smappic-fleet can run by name: the CI smoke
// grid, the Fig. 8 NUMA scaling study, the Fig. 9 thread-allocation study,
// and the three interconnect ablations.
func BuiltinSpecs(quick bool) []campaign.Spec {
	fig8 := campaign.Spec{
		Name:      "numa",
		Shapes:    []string{"4x1x12"},
		Workloads: []string{campaign.WorkloadIS},
		NUMA:      []bool{true, false},
		Threads:   []int{3, 6, 12, 24, 48},
		Seeds:     []uint64{isSeed},
		Keys:      1 << 15,
	}
	fig9 := campaign.Spec{
		Name:        "alloc",
		Shapes:      []string{"4x1x12"},
		Workloads:   []string{campaign.WorkloadIS},
		NUMA:        []bool{true, false},
		Threads:     []int{12},
		ActiveNodes: []int{1, 2, 3, 4},
		Seeds:       []uint64{isSeed},
		Keys:        1 << 15,
	}
	if quick {
		fig8.Threads = []int{3, 12, 48}
		fig8.Keys = 1 << 14
		fig9.Keys = 1 << 13
	}
	return []campaign.Spec{
		{
			Name:      "smoke",
			Shapes:    []string{"1x1x2", "2x1x2"},
			Workloads: []string{campaign.WorkloadIS},
			Seeds:     []uint64{1, 2},
			Keys:      1 << 10,
		},
		fig8,
		fig9,
		{
			Name:      "homing",
			Shapes:    []string{"2x1x4"},
			Workloads: []string{campaign.WorkloadIS},
			Homing:    []string{campaign.HomingRegion, campaign.HomingInterleave},
			Threads:   []int{8},
			Seeds:     []uint64{isSeed},
			Keys:      1 << 13,
		},
		{
			Name:      "credits",
			Shapes:    []string{"2x1x2"},
			Workloads: []string{campaign.WorkloadStores},
			Credits:   []int{9, 24, 72, bridge.DefaultParams().CreditsPerDst},
			Keys:      256,
		},
		{
			Name:         "interconnect",
			Shapes:       []string{"2x1x4"},
			Workloads:    []string{campaign.WorkloadProbe},
			ExtraLatency: []uint64{0, 125, 375},
			Keys:         1,
		},
	}
}
