package experiments

import (
	"fmt"
	"strings"
	"time"

	"smappic/internal/baseline"
	"smappic/internal/cloud"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/rvasm"
)

// prototypeBackend runs the Nginx+PHP side of the Fig. 12 pipeline on a
// live simulated prototype: the request handler parses the request, walks
// the S3 payload through the memory system and formats the response, all
// charged in prototype cycles.
type prototypeBackend struct {
	kern *kernel.Kernel
}

// Handle processes one HTTP request on the prototype.
func (pb *prototypeBackend) Handle(path string, s3Data []byte) (string, time.Duration) {
	k := pb.kern
	pr := k.Prototype()
	buf := k.Alloc(uint64(len(s3Data) + 4096))
	start := pr.Eng.Now()
	k.Spawn("nginx", []int{0}, func(c *kernel.Ctx) {
		// Parse the request line (per-byte scan).
		for range path {
			c.Compute(8)
		}
		// CGI handoff to the PHP script.
		c.Compute(2000)
		// The script stages the S3 payload through memory and builds the
		// response (copy + format).
		for i, b := range s3Data {
			c.Store(buf+uint64(i), 1, uint64(b))
			c.Compute(4)
		}
		for i := 0; i < len(s3Data); i++ {
			c.Load(buf+uint64(i), 1)
			c.Compute(4)
		}
		// Attach the current date (time syscall + formatting).
		c.Compute(5000)
	})
	end := k.Join()
	cycles := end - start
	secs := pr.Seconds(cycles)
	body := fmt.Sprintf("%s date=%d-cycles-%d", string(s3Data), pr.Cfg.ClockMHz, cycles)
	return body, time.Duration(secs * float64(time.Second))
}

// Fig12Result is one request through the in-situ cloud pipeline.
type Fig12Result struct {
	Trace          *cloud.Trace
	PrototypeShare float64 // fraction of end-to-end time spent on the prototype
}

// Fig12 builds the paper's pipeline (Lambda -> Nginx on a 1x1x4 SMAPPIC
// prototype -> S3) and pushes one request through it.
func Fig12() Fig12Result {
	p := newPrototype(1, 1, 4)
	k := kernel.New(p, kernel.DefaultConfig())
	s3 := cloud.NewS3()
	s3.Put("dataset.json", []byte(`{"records":[1,2,3,4],"source":"s3"}`))
	pipe := &cloud.Pipeline{
		Lambda:  cloud.NewLambda(),
		S3:      s3,
		Backend: &prototypeBackend{kern: k},
		S3Key:   "dataset.json",
	}
	tr, err := pipe.Request("GET /index.php HTTP/1.1")
	if err != nil {
		panic(err)
	}
	var proto time.Duration
	for _, s := range tr.Stages {
		if strings.Contains(s.Name, "prototype") {
			proto = s.Latency
		}
	}
	return Fig12Result{Trace: tr, PrototypeShare: float64(proto) / float64(tr.Total())}
}

// String renders the request trace.
func (r Fig12Result) String() string {
	return fmt.Sprintf("Fig 12: SMAPPIC in an experimental cloud pipeline (one request)\n%s  prototype share of end-to-end latency: %.0f%%\n",
		r.Trace.String(), r.PrototypeShare*100)
}

// Fig13Row is one benchmark's modeling cost across tools.
type Fig13Row struct {
	Benchmark string
	Dollars   map[baseline.Tool]float64 // absent = tool cannot run it
}

// Fig13Result is the cost comparison (paper Fig. 13) plus the HelloWorld
// Verilator anchor of §4.5.
type Fig13Result struct {
	Rows       []Fig13Row
	SuiteTotal map[baseline.Tool]float64
	Gem5Total  float64
	// HelloWorld anchor, measured by running the program on the RISC-V
	// prototype.
	HelloCycles       uint64
	HelloSMAPPICSec   float64
	HelloVerilatorSec float64
	HelloCostEffRatio float64
}

// fig13Tools are the bars shown in the figure (gem5 is annotated off-chart).
var fig13Tools = []baseline.Tool{baseline.SMAPPIC, baseline.FireSimSingle, baseline.FireSimSuper, baseline.Sniper}

// Fig13 computes modeling costs for every SPECint benchmark and tool, and
// measures the HelloWorld anchor on a real simulated prototype.
func Fig13() Fig13Result {
	res := Fig13Result{SuiteTotal: make(map[baseline.Tool]float64)}
	for _, b := range baseline.SPECint2017 {
		row := Fig13Row{Benchmark: b.Name, Dollars: make(map[baseline.Tool]float64)}
		for _, tool := range fig13Tools {
			d, _, err := baseline.Cost(baseline.ModelFor(tool), b)
			if err != nil {
				continue
			}
			row.Dollars[tool] = d
			res.SuiteTotal[tool] += d
		}
		res.Rows = append(res.Rows, row)
	}
	res.Gem5Total, _ = baseline.SuiteCost(baseline.ModelFor(baseline.Gem5))

	res.HelloCycles = helloWorldCycles()
	h := baseline.HelloWorld{Cycles: res.HelloCycles}
	res.HelloSMAPPICSec = h.SMAPPICSeconds()
	res.HelloVerilatorSec = h.VerilatorSeconds()
	res.HelloCostEffRatio = h.CostEfficiencyRatio()
	return res
}

// helloWorldCycles boots a 1x1x1 RISC-V prototype, runs a UART hello-world
// and returns the cycle count — the measurement both the SMAPPIC and
// Verilator times derive from.
func helloWorldCycles() uint64 {
	cfg := core.DefaultConfig(1, 1, 1)
	p, err := core.Build(cfg)
	if err != nil {
		panic(err)
	}
	host := p.Host()
	prog := rvasm.MustAssemble(core.ResetPC, `
		la   s0, msg
		li   s1, 0xF000001000
	putc:	lbu  t1, 0(s0)
		beqz t1, halt
		sd   t1, 0(s1)
	wait:	ld   t2, 40(s1)
		andi t2, t2, 0x20
		beqz t2, wait
		addi s0, s0, 1
		j    putc
	halt:	li a0, 0
		ebreak
	msg:	.asciz "Hello World\n"
	`)
	host.LoadProgram(0, prog)
	p.Start()
	p.Run()
	return uint64(p.Eng.Now())
}

// String renders the cost table and anchors.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13: modeling costs in dollars (paper totals: FireSim single 11.56, supernode 8.24; gem5 4-5 orders higher)\n")
	fmt.Fprintf(&b, "%-12s", "Benchmark")
	for _, tool := range fig13Tools {
		fmt.Fprintf(&b, "%22s", tool)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s", row.Benchmark)
		for _, tool := range fig13Tools {
			if d, ok := row.Dollars[tool]; ok {
				fmt.Fprintf(&b, "%21.3f$", d)
			} else {
				fmt.Fprintf(&b, "%22s", "n/a")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "SPECint 2017")
	for _, tool := range fig13Tools {
		fmt.Fprintf(&b, "%21.2f$", r.SuiteTotal[tool])
	}
	fmt.Fprintf(&b, "\ngem5 suite total: $%.0f (excluded from the chart, as in the paper)\n", r.Gem5Total)
	fmt.Fprintf(&b, "HelloWorld anchor: %d cycles -> SMAPPIC %.1f ms vs Verilator %.1f s (%.0fx cost-efficiency; paper: 4 ms vs 65 s, ~1600x)\n",
		r.HelloCycles, r.HelloSMAPPICSec*1000, r.HelloVerilatorSec, r.HelloCostEffRatio)
	return b.String()
}

// Fig14Result is the cloud vs on-premises cost study (paper Fig. 14).
type Fig14Result struct {
	Instance      string
	Days          []float64
	Cloud         []float64
	OnPrem        []float64
	CrossoverDays float64
}

// Fig14 samples both cost curves out to a year, for the single-FPGA
// instance the paper's comparison uses (f1.2xl vs one $8000 board).
func Fig14() Fig14Result {
	inst, err := cloud.InstanceByName("f1.2xl")
	if err != nil {
		panic(err)
	}
	days, cl, op := cloud.CostCurve(inst, 350, 25)
	return Fig14Result{Instance: inst.Name, Days: days, Cloud: cl, OnPrem: op, CrossoverDays: cloud.CrossoverDays(inst)}
}

// String renders the cost curves.
func (r Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14: FPGA modeling cost on %s, cloud vs on-premises (paper: crossover ~200 days)\n", r.Instance)
	fmt.Fprintf(&b, "%8s %12s %14s\n", "Days", "Cloud ($)", "On-prem ($)")
	for i := range r.Days {
		fmt.Fprintf(&b, "%8.0f %12.0f %14.0f\n", r.Days[i], r.Cloud[i], r.OnPrem[i])
	}
	fmt.Fprintf(&b, "crossover: %.0f days of continuous modeling\n", r.CrossoverDays)
	return b.String()
}
