package experiments

import (
	"fmt"
	"os"

	"smappic/internal/core"
)

// SnapshotHook, when set, receives a metrics-JSON snapshot of every
// experiment sub-run, labeled "fig8/t12/numa=on"-style. smappic-bench wires
// it to -counters-out; tests can capture it directly. Nil disables
// snapshotting entirely (the default).
var SnapshotHook func(label string, metrics []byte)

// snapshot publishes a sub-run's full counter state through SnapshotHook.
func snapshot(label string, p *core.Prototype) {
	if SnapshotHook == nil {
		return
	}
	out, err := p.MetricsJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: metrics snapshot failed: %v\n", label, err)
		return
	}
	SnapshotHook(label, out)
}

// snapshotMetrics republishes a campaign job's cached metrics document under
// an experiment's own label — the campaign-ported sweeps keep the exact
// label scheme the hand-rolled loops used.
func snapshotMetrics(label string, metrics []byte) {
	if SnapshotHook == nil || len(metrics) == 0 {
		return
	}
	SnapshotHook(label, metrics)
}
