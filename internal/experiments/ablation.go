package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/bridge"
	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out: SMAPPIC's
// address-region homing, the credit sizing of the inter-node bridge, and
// the traffic shaper's ability to model slower interconnects (the paper's
// Ampere-Altra remark in §4.1).

// AblationHomingResult compares SMAPPIC's region-based homing against
// global line interleaving under the NUMA workload.
type AblationHomingResult struct {
	RegionCycles     sim.Time
	InterleaveCycles sim.Time
	Slowdown         float64
}

// AblationHoming runs the NUMA-aware integer sort under both homing
// policies. Region homing is what lets first-touch allocation pay off;
// global interleaving sends most coherence traffic across the PCIe links
// regardless of page placement.
func AblationHoming() AblationHomingResult {
	run := func(global bool) sim.Time {
		cfg := core.DefaultConfig(2, 1, 4)
		cfg.Core = core.CoreNone
		cfg.GlobalInterleaveHoming = global
		p, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		k := kernel.New(p, kernel.DefaultConfig())
		ip := workload.DefaultISParams(8)
		ip.Keys = 1 << 13
		r := workload.RunIS(k, ip)
		if !r.Sorted {
			panic("ablation: unsorted")
		}
		snapshot(fmt.Sprintf("ablation-homing/global=%v", global), p)
		return r.Cycles
	}
	region, inter := run(false), run(true)
	return AblationHomingResult{
		RegionCycles:     region,
		InterleaveCycles: inter,
		Slowdown:         float64(inter) / float64(region),
	}
}

// String renders the homing ablation.
func (r AblationHomingResult) String() string {
	return fmt.Sprintf("Ablation (homing): region-based %d cycles, global interleave %d cycles -> interleaving is %.2fx slower; region homing is what makes NUMA-aware allocation effective",
		r.RegionCycles, r.InterleaveCycles, r.Slowdown)
}

// AblationCreditsResult sweeps the bridge's credit pool.
type AblationCreditsResult struct {
	Credits []int
	Cycles  []sim.Time
	Stalls  []uint64
}

// AblationCredits measures cross-node store throughput under different
// credit pools: too few credits leave the PCIe round trip exposed on every
// packet; the default pool covers it.
func AblationCredits() AblationCreditsResult {
	res := AblationCreditsResult{}
	for _, credits := range []int{9, 24, 72, bridge.DefaultParams().CreditsPerDst} {
		cfg := core.DefaultConfig(2, 1, 2)
		cfg.Core = core.CoreNone
		cfg.Bridge.CreditsPerDst = credits
		p, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		port := p.PortAt(cache.GID{Node: 0, Tile: 0})
		remote := p.Map.NodeDRAMBase(1) + 0x100000
		var took sim.Time
		sim.Go(p.Eng, "wl", func(proc *sim.Process) {
			start := proc.Now()
			for i := uint64(0); i < 256; i++ {
				port.Store(proc, remote+i*64, 8, i) // one miss per line
			}
			took = proc.Now() - start
		})
		p.Run()
		snapshot(fmt.Sprintf("ablation-credits/c%d", credits), p)
		res.Credits = append(res.Credits, credits)
		res.Cycles = append(res.Cycles, took)
		res.Stalls = append(res.Stalls, p.Stats.Get("node0.bridge.credit_stall"))
	}
	return res
}

// String renders the credit sweep.
func (r AblationCreditsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (bridge credits): 256 cross-node line stores\n")
	fmt.Fprintf(&b, "%10s %12s %14s\n", "credits", "cycles", "credit stalls")
	for i := range r.Credits {
		fmt.Fprintf(&b, "%10d %12d %14d\n", r.Credits[i], r.Cycles[i], r.Stalls[i])
	}
	return b.String()
}

// AblationInterconnectResult shows the traffic shaper modeling a slower
// inter-node link (paper §4.1: "the inter-node link latency can be
// adjusted to represent systems with a slower interconnect, e.g., Ampere
// Altra").
type AblationInterconnectResult struct {
	ExtraLatency []sim.Time
	InterCycles  []float64
}

// AblationInterconnect sweeps the bridge shaper's extra latency and
// reports the measured inter-node round trip.
func AblationInterconnect() AblationInterconnectResult {
	res := AblationInterconnectResult{}
	for _, extra := range []sim.Time{0, 125, 375} {
		cfg := core.DefaultConfig(2, 1, 4)
		cfg.Core = core.CoreNone
		cfg.Bridge.ExtraLatency = extra
		p, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		lat := p.MeasureLatency(cache.GID{Node: 0, Tile: 0}, cache.GID{Node: 1, Tile: 0}, 1)
		snapshot(fmt.Sprintf("ablation-interconnect/extra%d", extra), p)
		res.ExtraLatency = append(res.ExtraLatency, extra)
		res.InterCycles = append(res.InterCycles, float64(lat))
	}
	return res
}

// String renders the interconnect sweep.
func (r AblationInterconnectResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (inter-node link shaper): modeled extra latency vs measured RTT\n")
	fmt.Fprintf(&b, "%14s %18s\n", "extra (cycles)", "inter-node RTT")
	for i := range r.ExtraLatency {
		fmt.Fprintf(&b, "%14d %18.0f\n", r.ExtraLatency[i], r.InterCycles[i])
	}
	fmt.Fprintf(&b, "(F1's native PCIe floor is ~125 cycles RTT; slower interconnects are modeled on top)\n")
	return b.String()
}

// AblationCoreResult compares the two provided core models on the same
// program (paper §4.8: a couple of fixed core models are provided).
type AblationCoreResult struct {
	ArianeCycles sim.Time
	PicoCycles   sim.Time
}

// AblationCore boots both core types on the same bare-metal loop.
func AblationCore() AblationCoreResult {
	run := func(ct core.CoreType) sim.Time {
		cfg := core.DefaultConfig(1, 1, 1)
		cfg.Core = ct
		p, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		host := p.Host()
		host.LoadProgram(0, rvasm.MustAssemble(core.ResetPC, `
			li t0, 2000
			li a0, 1
		loop:	mul a0, a0, t0
			addi t0, t0, -1
			bnez t0, loop
			li a0, 0
			ebreak
		`))
		p.Start()
		t := p.RunUntilHalted(50_000_000)
		snapshot(fmt.Sprintf("ablation-core/%v", ct), p)
		return t
	}
	return AblationCoreResult{
		ArianeCycles: run(core.CoreAriane),
		PicoCycles:   run(core.CorePicoRV32),
	}
}

// String renders the core comparison.
func (r AblationCoreResult) String() string {
	return fmt.Sprintf("Ablation (core model): same program, Ariane %d cycles vs PicoRV32 %d cycles (%.2fx)",
		r.ArianeCycles, r.PicoCycles, float64(r.PicoCycles)/float64(r.ArianeCycles))
}
