package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/campaign"
	"smappic/internal/core"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
)

// The ablations quantify the design choices DESIGN.md calls out: SMAPPIC's
// address-region homing, the credit sizing of the inter-node bridge, and
// the traffic shaper's ability to model slower interconnects (the paper's
// Ampere-Altra remark in §4.1).

// AblationHomingResult compares SMAPPIC's region-based homing against
// global line interleaving under the NUMA workload.
type AblationHomingResult struct {
	RegionCycles     sim.Time
	InterleaveCycles sim.Time
	Slowdown         float64
}

// AblationHoming runs the NUMA-aware integer sort under both homing
// policies on the campaign engine. Region homing is what lets first-touch
// allocation pay off; global interleaving sends most coherence traffic
// across the PCIe links regardless of page placement.
func AblationHoming() AblationHomingResult {
	spec, _ := BuiltinSpec("homing", false)
	res := AblationHomingResult{}
	for _, out := range runCampaign(spec) {
		p, r := out.Job.Params, out.Result
		if !r.Sorted {
			panic("ablation: unsorted")
		}
		global := p.Homing == campaign.HomingInterleave
		snapshotMetrics(fmt.Sprintf("ablation-homing/global=%v", global), r.Metrics)
		if global {
			res.InterleaveCycles = sim.Time(r.Cycles)
		} else {
			res.RegionCycles = sim.Time(r.Cycles)
		}
	}
	res.Slowdown = float64(res.InterleaveCycles) / float64(res.RegionCycles)
	return res
}

// String renders the homing ablation.
func (r AblationHomingResult) String() string {
	return fmt.Sprintf("Ablation (homing): region-based %d cycles, global interleave %d cycles -> interleaving is %.2fx slower; region homing is what makes NUMA-aware allocation effective",
		r.RegionCycles, r.InterleaveCycles, r.Slowdown)
}

// AblationCreditsResult sweeps the bridge's credit pool.
type AblationCreditsResult struct {
	Credits []int
	Cycles  []sim.Time
	Stalls  []uint64
}

// AblationCredits measures cross-node store throughput under different
// credit pools: too few credits leave the PCIe round trip exposed on every
// packet; the default pool covers it. One campaign job per pool size.
func AblationCredits() AblationCreditsResult {
	spec, _ := BuiltinSpec("credits", false)
	res := AblationCreditsResult{}
	for _, out := range runCampaign(spec) {
		p, r := out.Job.Params, out.Result
		snapshotMetrics(fmt.Sprintf("ablation-credits/c%d", p.Credits), r.Metrics)
		res.Credits = append(res.Credits, p.Credits)
		res.Cycles = append(res.Cycles, sim.Time(r.Cycles))
		res.Stalls = append(res.Stalls, r.Stats["node0.bridge.credit_stall"])
	}
	return res
}

// String renders the credit sweep.
func (r AblationCreditsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (bridge credits): 256 cross-node line stores\n")
	fmt.Fprintf(&b, "%10s %12s %14s\n", "credits", "cycles", "credit stalls")
	for i := range r.Credits {
		fmt.Fprintf(&b, "%10d %12d %14d\n", r.Credits[i], r.Cycles[i], r.Stalls[i])
	}
	return b.String()
}

// AblationInterconnectResult shows the traffic shaper modeling a slower
// inter-node link (paper §4.1: "the inter-node link latency can be
// adjusted to represent systems with a slower interconnect, e.g., Ampere
// Altra").
type AblationInterconnectResult struct {
	ExtraLatency []sim.Time
	InterCycles  []float64
}

// AblationInterconnect sweeps the bridge shaper's extra latency and
// reports the measured inter-node round trip, one campaign job per point.
func AblationInterconnect() AblationInterconnectResult {
	spec, _ := BuiltinSpec("interconnect", false)
	res := AblationInterconnectResult{}
	for _, out := range runCampaign(spec) {
		p, r := out.Job.Params, out.Result
		snapshotMetrics(fmt.Sprintf("ablation-interconnect/extra%d", p.ExtraLatency), r.Metrics)
		res.ExtraLatency = append(res.ExtraLatency, sim.Time(p.ExtraLatency))
		res.InterCycles = append(res.InterCycles, float64(r.Cycles))
	}
	return res
}

// String renders the interconnect sweep.
func (r AblationInterconnectResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (inter-node link shaper): modeled extra latency vs measured RTT\n")
	fmt.Fprintf(&b, "%14s %18s\n", "extra (cycles)", "inter-node RTT")
	for i := range r.ExtraLatency {
		fmt.Fprintf(&b, "%14d %18.0f\n", r.ExtraLatency[i], r.InterCycles[i])
	}
	fmt.Fprintf(&b, "(F1's native PCIe floor is ~125 cycles RTT; slower interconnects are modeled on top)\n")
	return b.String()
}

// AblationCoreResult compares the two provided core models on the same
// program (paper §4.8: a couple of fixed core models are provided).
type AblationCoreResult struct {
	ArianeCycles sim.Time
	PicoCycles   sim.Time
}

// AblationCore boots both core types on the same bare-metal loop.
func AblationCore() AblationCoreResult {
	run := func(ct core.CoreType) sim.Time {
		cfg := core.DefaultConfig(1, 1, 1)
		cfg.Core = ct
		p, err := core.Build(cfg)
		if err != nil {
			panic(err)
		}
		host := p.Host()
		host.LoadProgram(0, rvasm.MustAssemble(core.ResetPC, `
			li t0, 2000
			li a0, 1
		loop:	mul a0, a0, t0
			addi t0, t0, -1
			bnez t0, loop
			li a0, 0
			ebreak
		`))
		p.Start()
		t := p.RunUntilHalted(50_000_000)
		snapshot(fmt.Sprintf("ablation-core/%v", ct), p)
		return t
	}
	return AblationCoreResult{
		ArianeCycles: run(core.CoreAriane),
		PicoCycles:   run(core.CorePicoRV32),
	}
}

// String renders the core comparison.
func (r AblationCoreResult) String() string {
	return fmt.Sprintf("Ablation (core model): same program, Ariane %d cycles vs PicoRV32 %d cycles (%.2fx)",
		r.ArianeCycles, r.PicoCycles, float64(r.PicoCycles)/float64(r.ArianeCycles))
}
