// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function returns the key numbers plus a formatted
// rendering of the same rows/series the paper reports; the benchmark
// harness (bench_test.go) and the smappic-bench command both drive it.
package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/baseline"
	"smappic/internal/cloud"
	"smappic/internal/core"
	"smappic/internal/fpga"
)

// Table1 renders the available F1 instances (paper Table 1).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Available AWS EC2 F1 instances\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %9s %7s %9s %10s %10s\n",
		"Instance", "#vCPUs", "HostMem", "Storage", "#FPGAs", "FPGAMem", "Price/hr", "HW price")
	for _, i := range cloud.F1Instances() {
		fmt.Fprintf(&b, "%-12s %8d %7dG %8dG %7d %8dG %9.2f$ %9.0f$\n",
			i.Name, i.VCPUs, i.MemoryGB, i.StorageGB, i.FPGAs, i.FPGAMemGB, i.PricePerHr, i.HardwarePrice)
	}
	return b.String()
}

// Table2 renders the prototyped system parameters (paper Table 2).
func Table2() string {
	cfg := core.DefaultConfig(4, 1, 12)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Prototyped System Parameters\n")
	rows := [][2]string{
		{"Instruction set", "RISC-V 64-bit"},
		{"Operating system", "mini-kernel (stands in for Linux v5.12, NUMA)"},
		{"Frequency", fmt.Sprintf("%d MHz", cfg.ClockMHz)},
		{"Core", string(cfg.Core) + " (in-order, 6-stage model)"},
		{"L1D cache", fmt.Sprintf("%d KB, %d ways", cfg.Cache.L1DSizeBytes/1024, cfg.Cache.Ways)},
		{"L1I cache", fmt.Sprintf("%d KB, %d ways", cfg.Cache.L1ISizeBytes/1024, cfg.Cache.Ways)},
		{"BPC cache", fmt.Sprintf("%d KB, %d ways", cfg.Cache.BPCSizeBytes/1024, cfg.Cache.Ways)},
		{"LLC cache slice", fmt.Sprintf("%d KB, %d ways", cfg.Cache.LLCSliceSize/1024, cfg.Cache.Ways)},
		{"DRAM latency", fmt.Sprintf("%d cycles (+controller path = 80)", cfg.DRAMLatency)},
		{"Inter-node round-trip latency", "125 cycles"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s %s\n", r[0], r[1])
	}
	return b.String()
}

// Table3 renders host requirements and cheapest instances (paper Table 3).
func Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Requirements for host machines and cheapest suitable AWS EC2 instances\n")
	fmt.Fprintf(&b, "%-22s %7s %8s %6s %-9s %9s\n", "Tool", "#vCPUs", "Memory", "FPGAs", "Instance", "Price/hr")
	for _, tool := range []baseline.Tool{baseline.Sniper, baseline.Gem5, baseline.Verilator, baseline.SMAPPIC} {
		m := baseline.ModelFor(tool)
		inst, err := cloud.CheapestFor(m.Requirements)
		if err != nil {
			fmt.Fprintf(&b, "%-22s <no instance: %v>\n", tool, err)
			continue
		}
		fmt.Fprintf(&b, "%-22s %7d %7dG %6d %-9s %8.2f$\n",
			tool, m.Requirements.VCPUs, m.Requirements.MemoryGB, m.Requirements.FPGAs, inst.Name, inst.PricePerHr)
	}
	return b.String()
}

// Table4Rows returns the resource model's reports for the paper's shapes.
func Table4Rows() []fpga.Report { return fpga.Table4() }

// Table4 renders SMAPPIC configurations with frequency and LUT utilization.
func Table4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: SMAPPIC configurations (BxC) with frequencies and LUT utilizations\n")
	fmt.Fprintf(&b, "%-14s %10s %12s\n", "Configuration", "Frequency", "Utilization")
	for _, r := range Table4Rows() {
		fmt.Fprintf(&b, "%-14s %7d MHz %11.0f%%\n",
			fmt.Sprintf("%dx%d", r.NodesPerFPGA, r.TilesPerNode), r.FrequencyMHz, r.Utilization*100)
	}
	flow := fpga.EstimateBuild(fpga.Estimate(1, 12))
	fmt.Fprintf(&b, "Build flow (1x12): synthesis %.1fh (%d GB), AWS postprocess %.1fh, bitstream load %ds\n",
		flow.SynthesisTime.Hours(), flow.SynthesisMemGB, flow.AWSPostprocess.Hours(),
		int(flow.BitstreamLoad.Seconds()))
	return b.String()
}
