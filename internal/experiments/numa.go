package experiments

import (
	"fmt"
	"strings"

	"smappic/internal/core"
)

// newPrototype builds a CoreNone prototype for execution-driven studies.
func newPrototype(a, b, c int) *core.Prototype {
	cfg := core.DefaultConfig(a, b, c)
	cfg.Core = core.CoreNone
	p, err := core.Build(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Fig7Result is the latency heatmap study (paper Fig. 7).
type Fig7Result struct {
	Matrix  [][]uint64
	Intra   float64 // mean intra-node round trip, cycles
	Inter   float64 // mean inter-node round trip, cycles
	Ratio   float64
	Heatmap string
}

// Fig7 measures inter-core round-trip latencies on the 48-core 4x1x12
// system (or 2x1x4 in quick mode) and aggregates the NUMA structure.
func Fig7(quick bool) Fig7Result {
	// Node size stays at the paper's 12 tiles even in quick mode: the
	// intra/inter ratio depends on the node's mesh diameter.
	a, c := 4, 12
	if quick {
		a = 2
	}
	p := newPrototype(a, 1, c)
	m := p.LatencyMatrix()
	intra, inter := p.LatencySummary(m)
	snapshot(fmt.Sprintf("fig7/%dx1x%d", a, c), p)
	out := Fig7Result{
		Intra:   intra,
		Inter:   inter,
		Ratio:   inter / intra,
		Heatmap: core.FormatHeatmap(m),
	}
	out.Matrix = make([][]uint64, len(m))
	for i := range m {
		out.Matrix[i] = make([]uint64, len(m[i]))
		for j := range m[i] {
			out.Matrix[i][j] = uint64(m[i][j])
		}
	}
	return out
}

// String renders the Fig. 7 summary.
func (r Fig7Result) String() string {
	return fmt.Sprintf("Fig 7: inter-core RTT: intra-node %.0f cycles, inter-node %.0f cycles (%.1fx; paper: ~100 vs ~250, 2.5x)",
		r.Intra, r.Inter, r.Ratio)
}

// Fig8Row is one thread-count point of the NUMA scaling study.
type Fig8Row struct {
	Threads    int
	OnSeconds  float64 // NUMA mode on, scaled problem
	OffSeconds float64
	// ClassCOnSeconds extrapolates to NPB class C (134M keys) linearly in
	// key count, for comparison with the paper's absolute axis.
	ClassCOnSeconds  float64
	ClassCOffSeconds float64
	Ratio            float64 // off/on
}

// Fig8Result is the full Fig. 8 series.
type Fig8Result struct {
	Keys int
	Rows []Fig8Row
}

const classCKeys = 134_217_728 // NPB IS class C

// Fig8 runs the NPB integer sort on the 48-core 4x1x12 system with the
// Linux-NUMA-mode-on/off comparison of paper Fig. 8. The sweep runs on the
// campaign engine: every (threads, NUMA) point is one job on the worker
// pool, and the rows are assembled from the outcomes afterwards.
func Fig8(quick bool) Fig8Result {
	spec, _ := BuiltinSpec("numa", quick)
	res := Fig8Result{Keys: spec.Keys}
	rows := map[int]*Fig8Row{}
	for _, t := range spec.Threads {
		rows[t] = &Fig8Row{Threads: t}
	}
	scale := float64(classCKeys) / float64(spec.Keys)
	for _, out := range runCampaign(spec) {
		p, r := out.Job.Params, out.Result
		if !r.Sorted {
			panic("experiments: Fig8 run produced unsorted output")
		}
		snapshotMetrics(fmt.Sprintf("fig8/t%d/numa=%v", p.Threads, p.NUMA), r.Metrics)
		row := rows[p.Threads]
		if p.NUMA {
			row.OnSeconds = r.Seconds
			row.ClassCOnSeconds = r.Seconds * scale
		} else {
			row.OffSeconds = r.Seconds
			row.ClassCOffSeconds = r.Seconds * scale
		}
	}
	for _, t := range spec.Threads {
		row := rows[t]
		row.Ratio = row.OffSeconds / row.OnSeconds
		res.Rows = append(res.Rows, *row)
	}
	return res
}

// String renders the Fig. 8 series.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: NUMA-aware vs non-NUMA Linux, integer sort (%d keys, class-C-extrapolated seconds)\n", r.Keys)
	fmt.Fprintf(&b, "%8s %14s %14s %8s\n", "Threads", "NUMA on (s)", "NUMA off (s)", "off/on")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.0f %14.0f %8.2f\n", row.Threads, row.ClassCOnSeconds, row.ClassCOffSeconds, row.Ratio)
	}
	fmt.Fprintf(&b, "(paper: NUMA mode reduces runtimes by 1.6-2.8x, gap grows with threads)\n")
	return b.String()
}

// Fig9Row is one active-node point of the thread-allocation study.
type Fig9Row struct {
	ActiveNodes int
	OnSeconds   float64
	OffSeconds  float64
}

// Fig9Result is the full Fig. 9 series.
type Fig9Result struct {
	Keys    int
	Threads int
	Rows    []Fig9Row
}

// Fig9 fixes 12 threads and pins them (taskset) to 1..4 nodes of the
// 4x1x12 system, in both NUMA modes (paper Fig. 9), as one campaign over
// the (active nodes, NUMA) grid.
func Fig9(quick bool) Fig9Result {
	spec, _ := BuiltinSpec("alloc", quick)
	res := Fig9Result{Keys: spec.Keys, Threads: spec.Threads[0]}
	rows := map[int]*Fig9Row{}
	for _, nodes := range spec.ActiveNodes {
		rows[nodes] = &Fig9Row{ActiveNodes: nodes}
	}
	scale := float64(classCKeys) / float64(spec.Keys)
	for _, out := range runCampaign(spec) {
		p, r := out.Job.Params, out.Result
		if !r.Sorted {
			panic("experiments: Fig9 run produced unsorted output")
		}
		snapshotMetrics(fmt.Sprintf("fig9/nodes%d/numa=%v", p.ActiveNodes, p.NUMA), r.Metrics)
		if p.NUMA {
			rows[p.ActiveNodes].OnSeconds = r.Seconds * scale
		} else {
			rows[p.ActiveNodes].OffSeconds = r.Seconds * scale
		}
	}
	for _, nodes := range spec.ActiveNodes {
		res.Rows = append(res.Rows, *rows[nodes])
	}
	return res
}

// String renders the Fig. 9 series.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: thread allocation, %d threads pinned to 1-4 nodes (class-C-extrapolated seconds)\n", r.Threads)
	fmt.Fprintf(&b, "%13s %14s %14s\n", "Active nodes", "NUMA on (s)", "NUMA off (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%13d %14.0f %14.0f\n", row.ActiveNodes, row.OnSeconds, row.OffSeconds)
	}
	fmt.Fprintf(&b, "(paper: NUMA on rises slightly with more nodes; NUMA off falls slightly)\n")
	return b.String()
}
