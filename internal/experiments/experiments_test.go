package experiments

import (
	"strings"
	"testing"

	"smappic/internal/baseline"
	"smappic/internal/workload"
)

func TestTablesRender(t *testing.T) {
	for name, fn := range map[string]func() string{
		"Table1": Table1, "Table2": Table2, "Table3": Table3, "Table4": Table4,
	} {
		out := fn()
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s output too short:\n%s", name, out)
		}
	}
	if !strings.Contains(Table1(), "f1.16xl") {
		t.Error("Table1 missing f1.16xl")
	}
	if !strings.Contains(Table3(), "t3.m") {
		t.Error("Table3 missing t3.m")
	}
	if !strings.Contains(Table4(), "75 MHz") {
		t.Error("Table4 missing the 75 MHz configurations")
	}
}

func TestFig7QuickShowsNUMAStructure(t *testing.T) {
	r := Fig7(true)
	if r.Ratio < 1.8 || r.Ratio > 4 {
		t.Fatalf("inter/intra = %.2f, want NUMA structure (~2.5)", r.Ratio)
	}
	if len(r.Matrix) != 24 {
		t.Fatalf("quick matrix is %d harts, want 24", len(r.Matrix))
	}
	if !strings.Contains(r.String(), "paper") {
		t.Error("summary should cite the paper bands")
	}
}

func TestFig8QuickShape(t *testing.T) {
	r := Fig8(true)
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Ratio <= 1.0 {
			t.Errorf("threads=%d: NUMA off/on ratio %.2f, want > 1", row.Threads, row.Ratio)
		}
	}
	// Strong scaling: 12 threads faster than 3 in NUMA mode (at the
	// quick problem size, 48 threads are past the scaling knee).
	if r.Rows[1].OnSeconds >= r.Rows[0].OnSeconds {
		t.Error("no strong scaling from 3 to 12 threads")
	}
	// Paper: the gap grows with thread count.
	if r.Rows[len(r.Rows)-1].Ratio <= r.Rows[0].Ratio {
		t.Logf("note: ratio did not grow monotonically (%.2f -> %.2f); paper shows growth",
			r.Rows[0].Ratio, r.Rows[len(r.Rows)-1].Ratio)
	}
}

func TestFig9QuickShape(t *testing.T) {
	r := Fig9(true)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Paper: in NUMA mode, spreading 12 threads over more nodes slightly
	// hurts; with NUMA off, it slightly helps.
	if !(r.Rows[3].OnSeconds > r.Rows[0].OnSeconds) {
		t.Errorf("NUMA on: 4 nodes (%.0f) should be slower than 1 node (%.0f)",
			r.Rows[3].OnSeconds, r.Rows[0].OnSeconds)
	}
	if !(r.Rows[3].OffSeconds < r.Rows[0].OffSeconds) {
		t.Errorf("NUMA off: 4 nodes (%.0f) should be faster than 1 node (%.0f)",
			r.Rows[3].OffSeconds, r.Rows[0].OffSeconds)
	}
}

func TestFig10QuickBands(t *testing.T) {
	r := Fig10(true)
	if r.GenSpeedup[workload.NoiseSW] != 1.0 || r.ApplySpeedup[workload.NoiseSW] != 1.0 {
		t.Fatal("SW mode must normalize to 1.0")
	}
	g1 := r.GenSpeedup[workload.NoiseHW1]
	g4 := r.GenSpeedup[workload.NoiseHW4]
	if g1 < 6 || g1 > 20 {
		t.Errorf("generator HW1 speedup %.1f, paper ~12", g1)
	}
	if g4 < 20 || g4 > 50 {
		t.Errorf("generator HW4 speedup %.1f, paper ~32", g4)
	}
	a4 := r.ApplySpeedup[workload.NoiseHW4]
	if a4 >= g4 {
		t.Errorf("applier HW4 (%.1f) should trail generator HW4 (%.1f)", a4, g4)
	}
	if a4 < 6 || a4 > 25 {
		t.Errorf("applier HW4 speedup %.1f, paper ~13", a4)
	}
}

func TestFig11QuickShape(t *testing.T) {
	r := Fig11(true)
	get := func(k workload.IrregularKernel, m workload.IrregularMode) float64 {
		return r.Speedup[k][m]
	}
	// Paper: MAPLE beats 2 threads on SPMV, SDHP, BFS; loses on SPMM.
	for _, k := range []workload.IrregularKernel{workload.SPMV, workload.SDHP, workload.BFS} {
		if get(k, workload.WithMAPLE) <= get(k, workload.TwoThreads) {
			t.Errorf("%s: MAPLE %.2f should beat 2 threads %.2f", k,
				get(k, workload.WithMAPLE), get(k, workload.TwoThreads))
		}
	}
	if get(workload.SPMM, workload.WithMAPLE) >= get(workload.SPMM, workload.TwoThreads) {
		t.Errorf("SPMM: 2 threads %.2f should beat MAPLE %.2f",
			get(workload.SPMM, workload.TwoThreads), get(workload.SPMM, workload.WithMAPLE))
	}
	if s := get(workload.SPMV, workload.WithMAPLE); s < 1.5 || s > 3.5 {
		t.Errorf("SPMV MAPLE speedup %.2f, paper 2.4", s)
	}
}

func TestFig12PipelineRuns(t *testing.T) {
	r := Fig12()
	if len(r.Trace.Stages) != 6 {
		t.Fatalf("%d stages", len(r.Trace.Stages))
	}
	if !strings.Contains(r.Trace.Response, "s3") {
		t.Fatal("response missing S3 payload")
	}
	if !strings.Contains(r.Trace.Response, "date=") {
		t.Fatal("script did not attach a date")
	}
	if r.PrototypeShare <= 0 || r.PrototypeShare >= 1 {
		t.Fatalf("prototype share %.2f out of range", r.PrototypeShare)
	}
}

func TestFig13CostRelations(t *testing.T) {
	r := Fig13()
	sm := r.SuiteTotal[baseline.SMAPPIC]
	fs := r.SuiteTotal[baseline.FireSimSingle]
	if ratio := fs / sm; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("FireSim/SMAPPIC = %.2f, paper ~4", ratio)
	}
	if r.Gem5Total < 100*fs {
		t.Errorf("gem5 total $%.0f not orders of magnitude above FireSim $%.2f", r.Gem5Total, fs)
	}
	// Sniper must skip perlbench.
	for _, row := range r.Rows {
		_, ok := row.Dollars[baseline.Sniper]
		if row.Benchmark == "perlbench" && ok {
			t.Error("Sniper should not have a perlbench bar")
		}
		if row.Benchmark != "perlbench" && !ok {
			t.Errorf("Sniper missing bar for %s", row.Benchmark)
		}
	}
	// HelloWorld anchor: ~ms on SMAPPIC, tens of seconds on Verilator,
	// cost-efficiency near the paper's 1600x.
	if r.HelloSMAPPICSec > 0.1 {
		t.Errorf("hello on SMAPPIC took %.3f s, want ms-scale", r.HelloSMAPPICSec)
	}
	if r.HelloVerilatorSec < 10 {
		t.Errorf("hello on Verilator %.1f s, want tens of seconds", r.HelloVerilatorSec)
	}
	if r.HelloCostEffRatio < 800 || r.HelloCostEffRatio > 3000 {
		t.Errorf("cost-efficiency ratio %.0f, paper ~1600", r.HelloCostEffRatio)
	}
}

func TestFig14Crossover(t *testing.T) {
	r := Fig14()
	if r.CrossoverDays < 190 || r.CrossoverDays > 215 {
		t.Fatalf("crossover %.0f days, paper ~200", r.CrossoverDays)
	}
	if len(r.Days) == 0 {
		t.Fatal("empty curve")
	}
}

func TestRenderingsMentionPaperReference(t *testing.T) {
	// Every figure's String cites the paper's expected values so the
	// harness output is self-describing.
	outs := []string{
		Fig8(true).String(),
		Fig9(true).String(),
		Fig10(true).String(),
		Fig11(true).String(),
		Fig13().String(),
		Fig14().String(),
	}
	for i, o := range outs {
		if !strings.Contains(o, "paper") {
			t.Errorf("rendering %d does not cite the paper's expectation:\n%s", i, o)
		}
	}
}

func TestAblationHomingShowsRegionBenefit(t *testing.T) {
	r := AblationHoming()
	if r.Slowdown < 1.1 {
		t.Fatalf("global interleaving only %.2fx slower; region homing should matter", r.Slowdown)
	}
}

func TestAblationCreditsMoreIsFaster(t *testing.T) {
	r := AblationCredits()
	first, last := r.Cycles[0], r.Cycles[len(r.Cycles)-1]
	if first <= last {
		t.Fatalf("9 credits (%d cycles) should be slower than the default pool (%d)", first, last)
	}
	if r.Stalls[0] == 0 {
		t.Error("tiny credit pool never stalled")
	}
}

func TestAblationInterconnectShaperScales(t *testing.T) {
	r := AblationInterconnect()
	if !(r.InterCycles[0] < r.InterCycles[1] && r.InterCycles[1] < r.InterCycles[2]) {
		t.Fatalf("shaped latencies not increasing: %v", r.InterCycles)
	}
	// 375 extra cycles on each crossing should add >= 700 to the RTT.
	if r.InterCycles[2]-r.InterCycles[0] < 700 {
		t.Fatalf("shaper effect too small: %v", r.InterCycles)
	}
}

func TestAblationFaultToleranceRecovers(t *testing.T) {
	r := AblationFaultTolerance()
	if !r.Identical {
		t.Fatal("lossy runs did not reproduce the fault-free output")
	}
	lossy := r.Rows[len(r.Rows)-1]
	if lossy.Retransmits == 0 {
		t.Error("p=0.05 run saw no retransmissions; injection not reaching the link")
	}
	if lossy.CreditRestored == 0 {
		t.Error("bridge reconciliation never restored a leaked credit")
	}
	if lossy.EccCorrected == 0 {
		t.Error("SECDED never corrected an injected upset")
	}
	if lossy.LinkFailed != 0 {
		t.Errorf("%d transfers exhausted retries at p=0.05; recovery should absorb this rate", lossy.LinkFailed)
	}
	if r.MaxSlowdown > 5 {
		t.Errorf("worst slowdown %.2fx; degradation should stay bounded", r.MaxSlowdown)
	}
}

func TestAblationCoreProfiles(t *testing.T) {
	r := AblationCore()
	if float64(r.PicoCycles) < float64(r.ArianeCycles)*1.4 {
		t.Fatalf("PicoRV32 %d vs Ariane %d: profile difference missing", r.PicoCycles, r.ArianeCycles)
	}
	if !strings.Contains(r.String(), "Ariane") {
		t.Error("rendering broken")
	}
}
