package smappic_test

import (
	"strings"
	"testing"

	"smappic"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
)

// TestPublicAPIQuickstart exercises the documented public surface end to
// end: build, load, boot, console.
func TestPublicAPIQuickstart(t *testing.T) {
	proto, err := smappic.Build(smappic.DefaultConfig(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	host := proto.Host()
	host.LoadProgram(0, rvasm.MustAssemble(smappic.ResetPC, `
		csrr t0, mhartid
		bnez t0, halt
		li   s1, 0xF000001000
		li   t1, 0x21       # '!'
		sd   t1, 0(s1)
	halt:	li a0, 0
		ebreak
	`))
	proto.Start()
	proto.Run()
	if !proto.AllHalted() {
		t.Fatal("harts did not halt")
	}
	if got := host.Console(0); got != "!" {
		t.Fatalf("console = %q", got)
	}
}

// TestPublicAPIKernelMode exercises the execution-driven path through the
// re-exported kernel types.
func TestPublicAPIKernelMode(t *testing.T) {
	cfg := smappic.DefaultConfig(2, 1, 2)
	cfg.Core = smappic.CoreNone
	proto, err := smappic.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := smappic.BootKernel(proto, smappic.DefaultKernelConfig())
	buf := k.Alloc(4096)
	var got uint64
	k.Spawn("t", k.NodeHarts(1), func(c *smappic.Ctx) {
		c.Store(buf, 8, 7)
		got = c.Load(buf, 8)
	})
	k.Join()
	if got != 7 {
		t.Fatalf("kernel-mode readback = %d", got)
	}
	if !strings.Contains(k.DeviceTree(), "numa-node-id") {
		t.Error("device tree missing NUMA info")
	}
}

// TestPublicAPIShapeValidation checks ParseShape and Validate through the
// root package.
func TestPublicAPIShapeValidation(t *testing.T) {
	a, b, c, err := smappic.ParseShape("2x2x4")
	if err != nil || a*b*c != 16 {
		t.Fatalf("ParseShape: %d %d %d %v", a, b, c, err)
	}
	bad := smappic.DefaultConfig(5, 1, 1)
	if bad.Validate() == nil {
		t.Fatal("5-FPGA config should be rejected")
	}
	var _ smappic.Time = sim.Time(0) // alias holds
}
