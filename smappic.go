// Package smappic is a cycle-level simulation of SMAPPIC, the Scalable
// Multi-FPGA Architecture Prototype Platform in the Cloud (Chirkov &
// Wentzlaff, ASPLOS 2023), built entirely in Go.
//
// A prototype consists of one or more nodes — each a BYOC-style tiled
// manycore with private caches, a directory-coherent distributed LLC and a
// three-channel mesh NoC — packed onto modeled AWS F1 FPGAs and stitched
// into a single shared-memory system by the inter-node bridge, which
// encapsulates NoC traffic in AXI4 writes tunneled over the PCIe fabric.
//
// Quick start:
//
//	cfg := smappic.DefaultConfig(4, 1, 12) // AxBxC: 4 FPGAs, 1 node each, 12 tiles
//	proto, err := smappic.Build(cfg)
//	...
//	host := proto.Host()
//	host.LoadProgram(0, rvasm.MustAssemble(smappic.ResetPC, source))
//	proto.Start()
//	proto.Run()
//	fmt.Print(host.Console(0))
//
// For large execution-driven studies, boot the mini-kernel instead of the
// RISC-V cores (Config.Core = CoreNone) and run workloads as threads; see
// package smappic/internal/kernel and the examples directory.
package smappic

import (
	"smappic/internal/cache"
	"smappic/internal/core"
	"smappic/internal/fault"
	"smappic/internal/kernel"
	"smappic/internal/sim"
)

// Re-exported platform types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Config describes a prototype in the paper's AxBxC notation.
	Config = core.Config
	// Prototype is a built SMAPPIC system.
	Prototype = core.Prototype
	// Node is one chip/die of the target system.
	Node = core.Node
	// Tile is one tile: private caches, LLC slice, optional core/accel.
	Tile = core.Tile
	// Host is the F1 host-side tooling (program loading, consoles).
	Host = core.Host
	// Port is the execution-driven memory interface of one tile.
	Port = core.Port
	// Device is a memory-mapped peripheral or accelerator.
	Device = core.Device
	// GID addresses a tile globally (node, tile).
	GID = cache.GID
	// CoreType selects a tile's compute unit.
	CoreType = core.CoreType
	// Kernel is the mini operating system for execution-driven studies.
	Kernel = kernel.Kernel
	// KernelConfig selects NUMA and scheduling policies.
	KernelConfig = kernel.Config
	// Thread is a mini-kernel software thread.
	Thread = kernel.Thread
	// Ctx is the API surface threads use (loads, stores, compute).
	Ctx = kernel.Ctx
	// Time is simulation time in prototype clock cycles.
	Time = sim.Time
	// FaultPlan is a parsed set of fault-injection rules (Config.Faults).
	FaultPlan = fault.Plan
)

// Core type choices.
const (
	CoreAriane = core.CoreAriane
	CoreNone   = core.CoreNone
)

// Address-map landmarks.
const (
	// ResetPC is where cores begin fetching.
	ResetPC = core.ResetPC
	// DRAMBase is the start of node 0's memory region.
	DRAMBase = core.DRAMBase
	// DevBase is the start of uncacheable device space.
	DevBase = core.DevBase
)

// Build constructs a prototype from a configuration (the FPGA image
// generation step).
func Build(cfg Config) (*Prototype, error) { return core.Build(cfg) }

// DefaultConfig returns the paper's Table 2 system for an AxBxC shape.
func DefaultConfig(fpgas, nodesPerFPGA, tilesPerNode int) Config {
	return core.DefaultConfig(fpgas, nodesPerFPGA, tilesPerNode)
}

// ParseShape parses "AxBxC" notation (e.g. "4x1x12").
func ParseShape(s string) (fpgas, nodes, tiles int, err error) {
	return core.ParseShape(s)
}

// ParseFaults parses a fault-injection spec ("pcie.*.drop:p=0.01,seed=7;...")
// into a plan for Config.Faults. An empty spec returns a nil plan (injection
// disabled); see the fault package for the full grammar.
func ParseFaults(spec string, defaultSeed uint64) (*FaultPlan, error) {
	return fault.Parse(spec, defaultSeed)
}

// BootKernel starts the mini operating system on a prototype built with
// CoreNone tiles.
func BootKernel(p *Prototype, cfg KernelConfig) *Kernel { return kernel.New(p, cfg) }

// DefaultKernelConfig returns NUMA-aware kernel defaults.
func DefaultKernelConfig() KernelConfig { return kernel.DefaultConfig() }
