#!/usr/bin/env bash
# bench.sh — reproducible benchmark runs for the engine fixtures.
#
# Usage:
#   scripts/bench.sh [output-file]             # run, save raw `go test -bench` output
#   scripts/bench.sh old.txt new.txt           # compare two saved runs with benchstat
#
# The run mode executes the BENCH_ENGINE.json fixtures (BenchmarkEngine_*)
# plus the sharded-engine comparison (BenchmarkParallel_vs_Serial) with a
# fixed -benchtime and -count, so two runs are comparable point estimates.
# Save the output before a change and after it, then use the compare mode
# (or benchstat directly) to get significance-tested deltas:
#
#   scripts/bench.sh before.txt
#   ... hack hack hack ...
#   scripts/bench.sh after.txt
#   scripts/bench.sh before.txt after.txt
#
# benchstat is optional: compare mode falls back to a side-by-side diff when
# it is not installed (this repo adds no dependencies; install it with
# `go install golang.org/x/perf/cmd/benchstat@latest` where network allows).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkEngine_|BenchmarkParallel_vs_Serial'
BENCHTIME=${BENCHTIME:-3x}
COUNT=${COUNT:-1}

if [ $# -eq 2 ]; then
    if command -v benchstat >/dev/null 2>&1; then
        exec benchstat "$1" "$2"
    fi
    echo "benchstat not installed; raw side-by-side (old | new):" >&2
    paste -d'|' <(grep '^Benchmark' "$1") <(grep '^Benchmark' "$2") | column -t -s'|'
    exit 0
fi

OUT=${1:-/dev/stdout}
echo "running: go test -run '^\$' -bench '$BENCH' -benchtime $BENCHTIME -count $COUNT -benchmem ." >&2
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$OUT"
