#!/usr/bin/env bash
# bench.sh — reproducible benchmark runs for the engine fixtures.
#
# Usage:
#   scripts/bench.sh [output-file]             # run, save raw `go test -bench` output
#   scripts/bench.sh old.txt new.txt           # compare two saved runs with benchstat
#   scripts/bench.sh --parallel-json [raw.txt] # emit a BENCH_PARALLEL.json trajectory entry
#
# The run mode executes the BENCH_ENGINE.json fixtures (BenchmarkEngine_*)
# plus the sharded-engine comparison (BenchmarkParallel_vs_Serial) with a
# fixed -benchtime and -count, so two runs are comparable point estimates.
# Save the output before a change and after it, then use the compare mode
# (or benchstat directly) to get significance-tested deltas:
#
#   scripts/bench.sh before.txt
#   ... hack hack hack ...
#   scripts/bench.sh after.txt
#   scripts/bench.sh before.txt after.txt
#
# benchstat is optional: compare mode falls back to a side-by-side diff when
# it is not installed (this repo adds no dependencies; install it with
# `go install golang.org/x/perf/cmd/benchstat@latest` where network allows).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkEngine_|BenchmarkParallel_vs_Serial'
BENCHTIME=${BENCHTIME:-3x}
COUNT=${COUNT:-1}

# --parallel-json: run (or parse a saved run of) BenchmarkParallel_vs_Serial
# and print a trajectory entry in the BENCH_PARALLEL.json shape, ready to
# append to its "trajectory" array. The parallel-scaling CI job uses this to
# record the multi-core scaling point from the run the gate was enforced on.
# Columns: serial, per-FPGA adaptive ("parallel"), per-FPGA fixed-window
# ("parallel_fixed") and per-node hierarchical ("parallel_node") — the
# node_vs_fpga ratio is the sub-FPGA sharding win (>1 means per-node is
# faster; expect <1 on hosts with fewer cores than node engines).
if [ "${1:-}" = "--parallel-json" ]; then
    RAW=${2:-}
    if [ -z "$RAW" ]; then
        RAW=$(mktemp)
        trap 'rm -f "$RAW"' EXIT
        echo "running: go test -run '^\$' -bench BenchmarkParallel_vs_Serial -benchtime $BENCHTIME -count 1 ." >&2
        go test -run '^$' -bench 'BenchmarkParallel_vs_Serial' -benchtime "$BENCHTIME" -count 1 . >"$RAW"
    fi
    HOST="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | sed 's/.*: //;s/  */ /g' || echo unknown), $(nproc) core(s) (GOMAXPROCS=${GOMAXPROCS:-$(nproc)})"
    awk -v date="$(date +%F)" -v host="$HOST" -v gover="$(go version | sed 's/^go version //')" '
        /^BenchmarkParallel_vs_Serial\// {
            split($1, path, "/")
            shape = path[2]; sub(/-[0-9]+$/, "", path[3]); mode = path[3]
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")      ns[shape, mode] = $i
                if ($(i+1) == "sim_cycles") cyc[shape]      = $i
            }
            shapes[shape] = 1
        }
        END {
            label["4node"] = "4node_4x1x2"; label["8node"] = "8node_4x2x2"
            printf "{\n  \"date\": \"%s\",\n  \"host\": \"%s\",\n  \"go\": \"%s\",\n  \"results\": {\n", date, host, gover
            n = 0
            pref[1] = "4node"; pref[2] = "8node"
            for (i = 1; i <= 2; i++) if (pref[i] in shapes) { order[++n] = pref[i]; delete shapes[pref[i]] }
            for (s in shapes) order[++n] = s
            for (i = 1; i <= n; i++) {
                s = order[i]
                printf "    \"%s\": {\"serial_ns_op\": %d, \"parallel_ns_op\": %d, \"parallel_fixed_ns_op\": %d, \"parallel_node_ns_op\": %d, \"speedup\": %.2f, \"fixed_speedup\": %.2f, \"node_speedup\": %.2f, \"node_vs_fpga\": %.2f, \"sim_cycles\": %d}%s\n", \
                    (s in label ? label[s] : s), ns[s, "serial"], ns[s, "parallel"], ns[s, "parallel-fixed"], ns[s, "parallel-node"], \
                    ns[s, "serial"] / ns[s, "parallel"], ns[s, "serial"] / ns[s, "parallel-fixed"], \
                    ns[s, "serial"] / ns[s, "parallel-node"], ns[s, "parallel"] / ns[s, "parallel-node"], cyc[s], (i < n ? "," : "")
            }
            printf "  }\n}\n"
        }' "$RAW"
    exit 0
fi

if [ $# -eq 2 ]; then
    if command -v benchstat >/dev/null 2>&1; then
        exec benchstat "$1" "$2"
    fi
    echo "benchstat not installed; raw side-by-side (old | new):" >&2
    paste -d'|' <(grep '^Benchmark' "$1") <(grep '^Benchmark' "$2") | column -t -s'|'
    exit 0
fi

OUT=${1:-/dev/stdout}
echo "running: go test -run '^\$' -bench '$BENCH' -benchtime $BENCHTIME -count $COUNT -benchmem ." >&2
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$OUT"
