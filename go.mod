module smappic

go 1.22
