// Differential harness for the sharded engine: every configuration below is
// simulated twice — once on the serial reference engine and once sharded
// across goroutines under the lookahead synchronizer — and the two runs must
// agree byte-for-byte on the MetricsJSON document, on the final simulated
// time, and on the workload's output checksum. Any scheduling divergence
// between the modes shows up as a counter or cycle-count drift, so this is
// the equivalence proof the parallel engine rests on.
package smappic_test

import (
	"bytes"
	"fmt"
	"testing"

	"smappic"
	"smappic/internal/accel"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/rvasm"
	"smappic/internal/workload"
)

// diffOutcome is everything a run must reproduce exactly.
type diffOutcome struct {
	metrics  []byte
	cycles   smappic.Time
	checksum uint64
}

// diffCase is one row of the differential table.
type diffCase struct {
	name        string
	a, b, c     int    // shape
	workload    string // is | irregular | noise | riscv
	numa        bool
	faults      string
	seed        uint64
	adaptive    int    // AdaptiveLookahead for the sharded run (0 = default cap)
	granularity string // ShardGranularity for the sharded run ("" = per-FPGA)
}

// buildProto builds one prototype for a case in the requested mode.
func buildProto(t *testing.T, dc diffCase, parallel int) *core.Prototype {
	t.Helper()
	cfg := smappic.DefaultConfig(dc.a, dc.b, dc.c)
	cfg.Parallel = parallel
	cfg.AdaptiveLookahead = dc.adaptive
	cfg.ShardGranularity = dc.granularity
	cfg.Seed = dc.seed
	if dc.workload != "riscv" {
		cfg.Core = core.CoreNone
	}
	if dc.faults != "" {
		var err error
		cfg.Faults, err = smappic.ParseFaults(dc.faults, dc.seed)
		if err != nil {
			t.Fatal(err)
		}
	}
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runCase executes one configuration in one mode and captures the outcome.
func runCase(t *testing.T, dc diffCase, parallel int) diffOutcome {
	t.Helper()
	p := buildProto(t, dc, parallel)
	var out diffOutcome

	switch dc.workload {
	case "is":
		kc := kernel.DefaultConfig()
		kc.NUMA = dc.numa
		kc.Seed = dc.seed
		k := kernel.New(p, kc)
		ip := workload.DefaultISParams(p.Cfg.TotalTiles())
		ip.Keys = 1 << 12
		r := workload.RunIS(k, ip)
		if !r.Sorted {
			t.Fatalf("%s: output not sorted", dc.name)
		}
		out.checksum = r.Checksum
	case "irregular":
		kc := kernel.DefaultConfig()
		kc.NUMA = dc.numa
		kc.Seed = dc.seed
		k := kernel.New(p, kc)
		ip := workload.DefaultIrregularParams()
		ip.Rows = 256
		r := workload.RunIrregular(k, workload.SPMV, workload.WithMAPLE, ip)
		out.checksum = r.Checksum
	case "noise":
		p.Nodes[0].Tiles[1].Accel = accel.NewGNG(1, p.StatsForNode(0), "gng")
		kc := kernel.DefaultConfig()
		kc.NUMA = dc.numa
		kc.Seed = dc.seed
		k := kernel.New(p, kc)
		np := workload.DefaultNoiseParams()
		r := workload.RunNoiseGenerator(k, workload.NoiseHW2, np)
		out.checksum = uint64(r.Cycles)
	case "riscv":
		host := p.Host()
		prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
		for n := 0; n < p.Cfg.TotalNodes(); n++ {
			host.LoadProgram(n, prog)
		}
		p.Start()
		p.RunUntilHalted(20_000_000)
		if !p.AllHalted() {
			t.Fatalf("%s: harts did not halt", dc.name)
		}
		sum := uint64(0)
		for n := 0; n < p.Cfg.TotalNodes(); n++ {
			for _, ch := range host.Console(n) {
				sum = sum*31 + uint64(ch)
			}
		}
		out.checksum = sum
	default:
		t.Fatalf("unknown workload %q", dc.workload)
	}

	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	out.metrics = m
	out.cycles = p.Now()
	return out
}

// diffProgram is the cross-node RISC-V payload: every hart halts, hart 0 of
// every node prints a banner (UART traffic exercises MMIO and interrupts).
const diffProgram = `
	csrr t0, mhartid
	bnez t0, halt
	la   s0, msg
	li   s1, 0xF000001000
putc:	lbu  t1, 0(s0)
	beqz t1, halt
	sd   t1, 0(s1)
wait:	ld   t2, 40(s1)
	andi t2, t2, 0x20
	beqz t2, wait
	addi s0, s0, 1
	j    putc
halt:	li a0, 0
	ebreak
msg:	.asciz "diff\n"
`

// pcieFaults is the drop/delay mix used by the fault-plan rows: drops force
// the reliable-delivery retransmission path, delays shift arrival times.
const pcieFaults = "pcie.*.drop:p=0.02;pcie.*.delay:p=0.01,cycles=300"

func diffCases() []diffCase {
	var cases []diffCase
	// IS across the shape ladder (1, 2, 4, 8 nodes), both NUMA modes,
	// with and without PCIe fault plans, two seeds each for the big shape.
	for _, sh := range []struct{ a, b, c int }{
		{1, 1, 2}, {2, 1, 2}, {4, 1, 2}, {2, 2, 2}, {4, 2, 2},
	} {
		for _, numa := range []bool{true, false} {
			cases = append(cases, diffCase{
				name: fmt.Sprintf("is-%dx%dx%d-numa=%v", sh.a, sh.b, sh.c, numa),
				a:    sh.a, b: sh.b, c: sh.c,
				workload: "is", numa: numa, seed: 42,
			})
		}
		if sh.a > 1 {
			cases = append(cases, diffCase{
				name: fmt.Sprintf("is-%dx%dx%d-faults", sh.a, sh.b, sh.c),
				a:    sh.a, b: sh.b, c: sh.c,
				workload: "is", numa: true, faults: pcieFaults, seed: 7,
			})
		}
	}
	cases = append(cases,
		diffCase{name: "is-4x2x2-seed9", a: 4, b: 2, c: 2, workload: "is", numa: false, seed: 9},
		diffCase{name: "is-4x2x2-faults-numa-off", a: 4, b: 2, c: 2, workload: "is", numa: false, faults: pcieFaults, seed: 11},
		// Irregular kernels with the MAPLE engine (single-node compute,
		// multi-FPGA build still exercises idle-shard synchronization).
		diffCase{name: "irregular-1x1x6", a: 1, b: 1, c: 6, workload: "irregular", numa: true, seed: 42},
		diffCase{name: "irregular-2x1x6", a: 2, b: 1, c: 6, workload: "irregular", numa: true, seed: 42},
		diffCase{name: "irregular-2x1x6-faults", a: 2, b: 1, c: 6, workload: "irregular", numa: true, faults: pcieFaults, seed: 13},
		// GNG noise generation through accelerator MMIO.
		diffCase{name: "noise-1x1x2", a: 1, b: 1, c: 2, workload: "noise", numa: true, seed: 42},
		diffCase{name: "noise-2x1x2", a: 2, b: 1, c: 2, workload: "noise", numa: true, seed: 42},
		// Full RISC-V cores over the bridge/PCIe fabric.
		diffCase{name: "riscv-4x1x2", a: 4, b: 1, c: 2, workload: "riscv", seed: 42},
		diffCase{name: "riscv-4x1x2-faults", a: 4, b: 1, c: 2, workload: "riscv", faults: pcieFaults, seed: 5},
	)
	return cases
}

// TestShardedMatchesSerial is the differential table: sharded == serial,
// byte for byte, across node counts, workloads, fault plans and seeds —
// and for every row, both with fixed windows (AdaptiveLookahead 1) and
// under the default adaptive widening cap, at per-FPGA shard granularity
// and (for multi-node FPGAs) at per-node granularity under the
// hierarchical synchronizer. Adaptive widening and shard granularity are
// execution scheduling only, so every sharded variant must reproduce the
// one serial outcome — which also pins per-node byte-identical to
// per-FPGA, transitively.
func TestShardedMatchesSerial(t *testing.T) {
	for _, dc := range diffCases() {
		dc := dc
		t.Run(dc.name, func(t *testing.T) {
			t.Parallel()
			serial := runCase(t, dc, 0)
			grans := []string{"fpga"}
			if dc.b > 1 {
				grans = append(grans, "node")
			}
			for _, mode := range []struct {
				name     string
				adaptive int
			}{{"fixed", 1}, {"adaptive", 0}} {
				for _, gran := range grans {
					label := mode.name + "/" + gran
					dc := dc
					dc.adaptive = mode.adaptive
					dc.granularity = gran
					sharded := runCase(t, dc, dc.a)
					if serial.cycles != sharded.cycles {
						t.Errorf("%s: final time: serial %d, sharded %d", label, serial.cycles, sharded.cycles)
					}
					if serial.checksum != sharded.checksum {
						t.Errorf("%s: checksum: serial %#x, sharded %#x", label, serial.checksum, sharded.checksum)
					}
					if !bytes.Equal(serial.metrics, sharded.metrics) {
						t.Errorf("%s: MetricsJSON diverges (%d vs %d bytes):\n%s",
							label, len(serial.metrics), len(sharded.metrics), firstDiff(serial.metrics, sharded.metrics))
					}
				}
			}
		})
	}
}

// firstDiff renders the first divergent region of two byte slices.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+120, i+120
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first diff at byte %d:\nserial:  …%s…\nsharded: …%s…", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("length mismatch at byte %d", n)
}
