// Differential harness for replay checkpoints: a run that checkpoints
// mid-flight and a run restored from that checkpoint must both be
// byte-identical to the uninterrupted reference — same MetricsJSON, same
// final time, same console output — in serial and sharded mode, with and
// without a PCIe fault plan (so cuts land mid-retransmission).
package smappic_test

import (
	"bytes"
	"errors"
	"testing"

	"smappic"
	"smappic/internal/ckpt"
	"smappic/internal/core"
	"smappic/internal/rvasm"
)

// replayCfg is the configuration under test: multi-FPGA so the cut crosses
// bridge and PCIe traffic.
func replayCfg(t *testing.T, parallel int, faults string) smappic.Config {
	return replayCfgAdaptive(t, parallel, faults, 0)
}

// replayCfgAdaptive additionally pins the adaptive-lookahead cap (0 keeps
// the default widening cap).
func replayCfgAdaptive(t *testing.T, parallel int, faults string, adaptive int) smappic.Config {
	return replayCfgShaped(t, 4, 1, parallel, faults, adaptive, "")
}

// replayCfgShaped is the fully-parameterized builder: shape (a FPGAs of b
// nodes), engine mode, fault plan, widening cap and shard granularity. The
// per-node rows use 2x2x2 — multi-node FPGAs, so node granularity actually
// nests inner windows.
func replayCfgShaped(t *testing.T, a, b, parallel int, faults string, adaptive int, granularity string) smappic.Config {
	t.Helper()
	cfg := smappic.DefaultConfig(a, b, 2)
	cfg.Parallel = parallel
	cfg.AdaptiveLookahead = adaptive
	cfg.ShardGranularity = granularity
	cfg.Seed = 42
	if faults != "" {
		var err error
		cfg.Faults, err = smappic.ParseFaults(faults, 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

// replayOutcome captures everything a completed run must reproduce.
func replayOutcome(t *testing.T, p *core.Prototype) diffOutcome {
	t.Helper()
	if !p.AllHalted() {
		t.Fatal("harts did not halt")
	}
	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	sum := uint64(0)
	host := p.Host()
	for n := 0; n < p.Cfg.TotalNodes(); n++ {
		for _, ch := range host.Console(n) {
			sum = sum*31 + uint64(ch)
		}
	}
	return diffOutcome{metrics: m, cycles: p.Now(), checksum: sum}
}

// startReplayProto builds a prototype and loads the cross-node program.
func startReplayProto(t *testing.T, cfg smappic.Config) *core.Prototype {
	t.Helper()
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
	host := p.Host()
	for n := 0; n < p.Cfg.TotalNodes(); n++ {
		host.LoadProgram(n, prog)
	}
	p.Start()
	return p
}

// TestReplayCheckpointRoundTrip checkpoints a RISC-V run at mid-run cycles,
// restores each snapshot via deterministic replay, and requires the
// continued run to match the uninterrupted reference byte for byte.
func TestReplayCheckpointRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name        string
		a, b        int
		parallel    int
		faults      string
		adaptive    int
		granularity string
	}{
		{"serial", 4, 1, 0, "", 0, ""},
		{"serial-faults", 4, 1, 0, pcieFaults, 0, ""},
		// Serial ignores the adaptive knob entirely; the row proves a config
		// carrying it still round-trips (same ConfigHash, same replay).
		{"serial-adaptive-cfg", 4, 1, 0, "", 16, ""},
		// The plain sharded rows run under the default widening cap, so the
		// cut lands at adaptively-widened window boundaries; the fixed row
		// pins the pre-adaptive discipline.
		{"sharded", 4, 1, 4, "", 0, ""},
		{"sharded-fixed", 4, 1, 4, "", 1, ""},
		{"sharded-faults", 4, 1, 4, pcieFaults, 0, ""},
		// Per-node granularity on multi-node FPGAs: the replay cursor counts
		// hierarchical windows (outer digest folds the inner clusters'), so
		// the cut lands at nested-window boundaries.
		{"sharded-node", 2, 2, 2, "", 0, "node"},
		{"sharded-node-fixed", 2, 2, 2, "", 1, "node"},
		{"sharded-node-faults", 2, 2, 2, pcieFaults, 0, "node"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := replayCfgShaped(t, tc.a, tc.b, tc.parallel, tc.faults, tc.adaptive, tc.granularity)

			cold := startReplayProto(t, cfg)
			cold.RunUntilHalted(20_000_000)
			want := replayOutcome(t, cold)

			for _, at := range []smappic.Time{500, 2_000, want.cycles / 2} {
				// Checkpointing run: pause at the cut, snapshot, continue.
				// The pause itself must not perturb the result.
				p := startReplayProto(t, cfg)
				p.RunUntilHalted(at)
				var buf bytes.Buffer
				if err := p.Checkpoint(&buf); err != nil {
					t.Fatalf("at=%d: Checkpoint: %v", at, err)
				}
				p.RunUntilHalted(20_000_000)
				if got := replayOutcome(t, p); !bytes.Equal(got.metrics, want.metrics) ||
					got.cycles != want.cycles || got.checksum != want.checksum {
					t.Fatalf("at=%d: checkpointing run diverged from reference", at)
				}

				// Restored run: rebuild, replay to the cursor, continue.
				r, snap, err := core.RestorePrototype(bytes.NewReader(buf.Bytes()), cfg)
				if err != nil {
					t.Fatalf("at=%d: RestorePrototype: %v", at, err)
				}
				prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
				host := r.Host()
				for n := 0; n < r.Cfg.TotalNodes(); n++ {
					host.LoadProgram(n, prog)
				}
				r.Start()
				if err := r.Replay(snap); err != nil {
					t.Fatalf("at=%d: Replay: %v", at, err)
				}
				r.RunUntilHalted(20_000_000)
				got := replayOutcome(t, r)
				if got.cycles != want.cycles {
					t.Errorf("at=%d: final time %d, want %d", at, got.cycles, want.cycles)
				}
				if got.checksum != want.checksum {
					t.Errorf("at=%d: console checksum %#x, want %#x", at, got.checksum, want.checksum)
				}
				if !bytes.Equal(got.metrics, want.metrics) {
					t.Errorf("at=%d: MetricsJSON diverges:\n%s", at, firstDiff(got.metrics, want.metrics))
				}
			}
		})
	}
}

// TestReplayRejectsModeMismatch restores a serial snapshot into a sharded
// build (and vice versa); both must be refused with a typed error.
func TestReplayRejectsModeMismatch(t *testing.T) {
	snapFor := func(parallel int) []byte {
		cfg := replayCfg(t, parallel, "")
		p := startReplayProto(t, cfg)
		p.RunUntilHalted(2_000)
		var buf bytes.Buffer
		if err := p.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, tc := range []struct {
		name    string
		snapPar int
		restPar int
	}{
		{"serial-into-sharded", 0, 4},
		{"sharded-into-serial", 4, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := snapFor(tc.snapPar)
			cfg := replayCfg(t, tc.restPar, "")
			p, snap, err := core.RestorePrototype(bytes.NewReader(raw), cfg)
			if err != nil {
				t.Fatalf("RestorePrototype: %v", err)
			}
			prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
			host := p.Host()
			for n := 0; n < p.Cfg.TotalNodes(); n++ {
				host.LoadProgram(n, prog)
			}
			p.Start()
			err = p.Replay(snap)
			var me *ckpt.MismatchError
			if !errors.As(err, &me) {
				t.Fatalf("replay across engine modes: error %T (%v), want MismatchError", err, err)
			}
		})
	}
}

// TestReplayRejectsAdaptiveMismatch restores a sharded snapshot taken under
// the default widening cap into a fixed-window build: the window cursor is
// meaningless across caps, so replay must refuse with a typed error rather
// than silently stepping a different window sequence.
func TestReplayRejectsAdaptiveMismatch(t *testing.T) {
	cfg := replayCfgAdaptive(t, 4, "", 0)
	p := startReplayProto(t, cfg)
	p.RunUntilHalted(5_000)
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	fixed := replayCfgAdaptive(t, 4, "", 1)
	r, snap, err := core.RestorePrototype(bytes.NewReader(buf.Bytes()), fixed)
	if err != nil {
		t.Fatalf("RestorePrototype: %v", err)
	}
	prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
	host := r.Host()
	for n := 0; n < r.Cfg.TotalNodes(); n++ {
		host.LoadProgram(n, prog)
	}
	r.Start()
	err = r.Replay(snap)
	var me *ckpt.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("replay across adaptive caps: error %T (%v), want MismatchError", err, err)
	}
}

// TestReplayRejectsGranularityMismatch restores a per-FPGA snapshot into a
// per-node build (and vice versa) of the same shape: the window cursor
// counts different synchronizer steps at each granularity, so replay must
// refuse with a typed error naming the shard granularity.
func TestReplayRejectsGranularityMismatch(t *testing.T) {
	snapFor := func(granularity string) []byte {
		cfg := replayCfgShaped(t, 2, 2, 2, "", 0, granularity)
		p := startReplayProto(t, cfg)
		p.RunUntilHalted(5_000)
		var buf bytes.Buffer
		if err := p.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, tc := range []struct {
		name     string
		snapGran string
		restGran string
	}{
		{"fpga-into-node", "fpga", "node"},
		{"node-into-fpga", "node", "fpga"},
		// The zero value means per-FPGA: a legacy snapshot without the field
		// must restore into an explicit per-FPGA build, not be rejected.
		{"default-into-fpga-ok", "", "fpga"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw := snapFor(tc.snapGran)
			cfg := replayCfgShaped(t, 2, 2, 2, "", 0, tc.restGran)
			p, snap, err := core.RestorePrototype(bytes.NewReader(raw), cfg)
			if err != nil {
				t.Fatalf("RestorePrototype: %v", err)
			}
			prog := rvasm.MustAssemble(smappic.ResetPC, diffProgram)
			host := p.Host()
			for n := 0; n < p.Cfg.TotalNodes(); n++ {
				host.LoadProgram(n, prog)
			}
			p.Start()
			err = p.Replay(snap)
			if tc.snapGran == "" || tc.snapGran == tc.restGran {
				if err != nil {
					t.Fatalf("same-granularity replay failed: %v", err)
				}
				return
			}
			var me *ckpt.MismatchError
			if !errors.As(err, &me) {
				t.Fatalf("replay across shard granularities: error %T (%v), want MismatchError", err, err)
			}
		})
	}
}
