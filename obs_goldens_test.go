// Non-perturbation proof for the observability server: the golden fixtures
// under testdata/ must be reproduced byte-for-byte with the dashboard server
// attached and actively serving clients during the run. These tests share
// the fixtures with goldens_test.go and never pass -update — if observation
// changed the simulation in any way, the bytes would drift.
package smappic_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"smappic"
	"smappic/internal/core"
	"smappic/internal/kernel"
	"smappic/internal/obs"
	"smappic/internal/rvasm"
	"smappic/internal/sim"
	"smappic/internal/workload"
)

// hammer polls /api/metrics from several goroutines until stop is closed,
// checking every response parses. Returns a join function.
func hammer(t *testing.T, url string, stop chan struct{}) func() {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url + "/api/metrics")
				if err != nil {
					return
				}
				var doc map[string]any
				err = json.NewDecoder(resp.Body).Decode(&doc)
				resp.Body.Close()
				if err != nil {
					t.Errorf("mid-run metrics not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	return wg.Wait
}

// TestGoldenQuickstartWithServer re-runs the quickstart golden with the
// observability server publishing from the driving goroutine every 500
// cycles while HTTP clients poll it.
func TestGoldenQuickstartWithServer(t *testing.T) {
	cfg := smappic.DefaultConfig(1, 1, 2)
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := obs.New()
	srv.MinPublishInterval = 0
	srv.ObservePrototype(p)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	stop := make(chan struct{})
	join := hammer(t, ts.URL, stop)

	prog := rvasm.MustAssemble(smappic.ResetPC, quickstartProgram)
	host := p.Host()
	host.LoadProgram(0, prog)
	p.Start()
	p.RunObserved(500, srv.Publish)
	srv.Flush()
	close(stop)
	ts.CloseClientConnections()
	join()

	if got, want := host.Console(0), "10! = 3628800\n"; got != want {
		t.Fatalf("console = %q, want %q", got, want)
	}
	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quickstart_metrics.json", m)
}

// TestGoldenNUMA48WithServer re-runs the numa48 golden — the flagship
// 4-node kernel workload — observed: the kernel's engine-driving step is
// replaced with RunObserved so snapshots publish between events throughout.
func TestGoldenNUMA48WithServer(t *testing.T) {
	cfg := smappic.DefaultConfig(4, 1, 12)
	cfg.Core = core.CoreNone
	p, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := obs.New()
	srv.MinPublishInterval = 0
	srv.ObservePrototype(p)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	stop := make(chan struct{})
	join := hammer(t, ts.URL, stop)

	k := kernel.New(p, kernel.DefaultConfig())
	k.SetRunner(func() sim.Time { return p.RunObserved(1000, srv.Publish) })
	ip := workload.DefaultISParams(24)
	ip.Keys = 1 << 13
	r := workload.RunIS(k, ip)
	srv.Flush()
	close(stop)
	ts.CloseClientConnections()
	join()

	if !r.Sorted {
		t.Fatal("integer sort output not sorted")
	}
	m, err := p.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "numa48_metrics.json", m)
}
