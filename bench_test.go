// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact, prints the same
// rows/series the paper reports, and exports the headline numbers as
// benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Use -short for reduced problem sizes (same shapes, smaller inputs).
package smappic_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"smappic"
	"smappic/internal/baseline"
	"smappic/internal/core"
	"smappic/internal/experiments"
	"smappic/internal/kernel"
	"smappic/internal/workload"
)

// printOnce deduplicates artifact printing across benchmark iterations.
var printOnce sync.Map

func report(name, artifact string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
}

func BenchmarkTable1_F1Instances(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1()
	}
	report("Table 1", out)
}

func BenchmarkTable2_SystemParameters(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table2()
	}
	report("Table 2", out)
}

func BenchmarkTable3_HostRequirements(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table3()
	}
	report("Table 3", out)
}

func BenchmarkTable4_FPGAUtilization(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table4()
	}
	report("Table 4", out)
	rows := experiments.Table4Rows()
	b.ReportMetric(float64(rows[0].FrequencyMHz), "MHz_1x12")
	b.ReportMetric(rows[0].Utilization*100, "util%_1x12")
}

func BenchmarkFig7_LatencyHeatmap(b *testing.B) {
	var r experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(testing.Short())
	}
	report("Fig 7", r.String()+"\n\nHeatmap (cycles):\n"+r.Heatmap)
	b.ReportMetric(r.Intra, "intra_cycles")
	b.ReportMetric(r.Inter, "inter_cycles")
	b.ReportMetric(r.Ratio, "inter/intra")
}

func BenchmarkFig8_NUMAScaling(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(testing.Short())
	}
	report("Fig 8", r.String())
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	b.ReportMetric(first.Ratio, "off/on_low_threads")
	b.ReportMetric(last.Ratio, "off/on_max_threads")
}

func BenchmarkFig9_ThreadAllocation(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(testing.Short())
	}
	report("Fig 9", r.String())
	b.ReportMetric(r.Rows[3].OnSeconds/r.Rows[0].OnSeconds, "on_4node/1node")
	b.ReportMetric(r.Rows[3].OffSeconds/r.Rows[0].OffSeconds, "off_4node/1node")
}

func BenchmarkFig10_GNGAccelerator(b *testing.B) {
	var r experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10(testing.Short())
	}
	report("Fig 10", r.String())
	b.ReportMetric(r.GenSpeedup[workload.NoiseHW1], "genA_x1")
	b.ReportMetric(r.GenSpeedup[workload.NoiseHW4], "genA_x4")
	b.ReportMetric(r.ApplySpeedup[workload.NoiseHW4], "applyB_x4")
}

func BenchmarkFig11_MAPLE(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(testing.Short())
	}
	report("Fig 11", r.String())
	b.ReportMetric(r.Speedup[workload.SPMV][workload.WithMAPLE], "spmv_maple")
	b.ReportMetric(r.Speedup[workload.BFS][workload.WithMAPLE], "bfs_maple")
	b.ReportMetric(r.Speedup[workload.SPMM][workload.TwoThreads], "spmm_2t")
}

func BenchmarkFig12_CloudPipeline(b *testing.B) {
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12()
	}
	report("Fig 12", r.String())
	b.ReportMetric(float64(r.Trace.Total().Microseconds())/1000, "end_to_end_ms")
	b.ReportMetric(r.PrototypeShare*100, "prototype_share_%")
}

func BenchmarkFig13_ModelingCost(b *testing.B) {
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13()
	}
	report("Fig 13", r.String())
	b.ReportMetric(r.SuiteTotal[baseline.FireSimSingle]/r.SuiteTotal[baseline.SMAPPIC], "firesim/smappic")
	b.ReportMetric(r.SuiteTotal[baseline.SMAPPIC], "smappic_suite_$")
	b.ReportMetric(r.HelloCostEffRatio, "verilator_costeff_x")
}

func BenchmarkFig14_CloudVsOnPrem(b *testing.B) {
	var r experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14()
	}
	report("Fig 14", r.String())
	b.ReportMetric(r.CrossoverDays, "crossover_days")
}

// benchIS runs the NPB integer sort once on the given shape, serial
// (parallel=0) or sharded (parallel=FPGAs) under the given adaptive
// lookahead cap (0 = default) and shard granularity ("" = per-FPGA,
// "node" = per-node under the hierarchical synchronizer), and returns the
// simulated cycle count. It is shared between the benchmarks and the CI
// scaling gates (see scaling_gate_test.go), so the gated numbers and the
// recorded benchmark numbers are the same run.
func benchIS(tb testing.TB, fpgas, nodesPerFPGA, tiles, parallel, adaptive int, granularity string) smappic.Time {
	tb.Helper()
	cfg := smappic.DefaultConfig(fpgas, nodesPerFPGA, tiles)
	cfg.Core = core.CoreNone
	cfg.Parallel = parallel
	cfg.AdaptiveLookahead = adaptive
	cfg.ShardGranularity = granularity
	p, err := core.Build(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	k := kernel.New(p, kernel.DefaultConfig())
	ip := workload.DefaultISParams(p.Cfg.TotalTiles())
	ip.Keys = 1 << 13
	r := workload.RunIS(k, ip)
	if !r.Sorted {
		tb.Fatal("integer sort output not sorted")
	}
	return r.Cycles
}

// BenchmarkParallel_vs_Serial measures the sharded engine against the
// serial reference on the 4-node (4x1x2) and 8-node (4x2x2) NPB-IS
// configurations. The sharded engine's speedup is bounded by the host's
// core count: on a single-core host the window barriers are pure overhead,
// so treat serial-vs-parallel deltas here together with the gomaxprocs
// metric (see BENCH_PARALLEL.json for the recorded trajectory).
func BenchmarkParallel_vs_Serial(b *testing.B) {
	shapes := []struct {
		name                string
		fpgas, nodes, tiles int
	}{
		{"4node", 4, 1, 2},
		{"8node", 4, 2, 2},
	}
	for _, sh := range shapes {
		for _, mode := range []struct {
			name        string
			parallel    func(fpgas int) int
			adaptive    int
			granularity string
		}{
			{"serial", func(int) int { return 0 }, 0, ""},
			// "parallel" is the shipping configuration (adaptive widening at
			// the default cap); "parallel-fixed" pins the pre-adaptive
			// one-crossing windows so the widening win stays measurable;
			// "parallel-node" shards per node under the hierarchical
			// synchronizer (on the 4node shape NodesPerFPGA is 1, so that
			// column doubles as the degenerate-overhead measurement).
			{"parallel", func(f int) int { return f }, 0, ""},
			{"parallel-fixed", func(f int) int { return f }, 1, ""},
			{"parallel-node", func(f int) int { return f }, 0, "node"},
		} {
			b.Run(sh.name+"/"+mode.name, func(b *testing.B) {
				var cycles smappic.Time
				for i := 0; i < b.N; i++ {
					cycles = benchIS(b, sh.fpgas, sh.nodes, sh.tiles, mode.parallel(sh.fpgas), mode.adaptive, mode.granularity)
				}
				b.ReportMetric(float64(cycles), "sim_cycles")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}

// Ablation benchmarks: the design-choice studies DESIGN.md calls out.

func BenchmarkAblation_Homing(b *testing.B) {
	var r experiments.AblationHomingResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationHoming()
	}
	report("Ablation: homing", r.String())
	b.ReportMetric(r.Slowdown, "interleave_slowdown_x")
}

func BenchmarkAblation_BridgeCredits(b *testing.B) {
	var r experiments.AblationCreditsResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationCredits()
	}
	report("Ablation: bridge credits", r.String())
	b.ReportMetric(float64(r.Cycles[0])/float64(r.Cycles[len(r.Cycles)-1]), "min_vs_default_x")
}

func BenchmarkAblation_InterconnectShaper(b *testing.B) {
	var r experiments.AblationInterconnectResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationInterconnect()
	}
	report("Ablation: interconnect shaper", r.String())
	b.ReportMetric(r.InterCycles[len(r.InterCycles)-1], "altra_like_rtt_cycles")
}

func BenchmarkAblation_FaultTolerance(b *testing.B) {
	var r experiments.AblationFaultToleranceResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationFaultTolerance()
	}
	report("Ablation: fault tolerance", r.String())
	b.ReportMetric(r.MaxSlowdown, "worst_slowdown_x")
	b.ReportMetric(float64(r.Rows[len(r.Rows)-1].Retransmits), "retransmits_at_p5")
	if !r.Identical {
		b.Fatal("lossy runs diverged from the fault-free output")
	}
}

func BenchmarkAblation_CoreModels(b *testing.B) {
	var r experiments.AblationCoreResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationCore()
	}
	report("Ablation: core models", r.String())
	b.ReportMetric(float64(r.PicoCycles)/float64(r.ArianeCycles), "pico_vs_ariane_x")
}
